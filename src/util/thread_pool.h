#ifndef PPM_UTIL_THREAD_POOL_H_
#define PPM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppm {

/// Resolves a `MiningOptions::num_threads`-style request to a worker count:
/// 0 means "use the hardware concurrency", anything else is taken literally.
/// Never returns 0.
uint32_t ResolveThreadCount(uint32_t requested);

/// A fixed-size pool of worker threads executing submitted closures in FIFO
/// order.
///
/// The pool is deliberately small: `Submit` + `Wait` for task-per-item
/// dispatch (concurrent multi-period mining) and `ParallelFor` for sharded
/// index-range loops (the scans and derivation). Tasks must not throw --
/// the library reports errors through `Status` values captured by the
/// closures, never exceptions.
///
/// Determinism contract: `ParallelFor` always splits `[0, n)` into the same
/// contiguous chunks for a given `(n, num_chunks)`, so callers that merge
/// per-chunk results in chunk order get run-to-run identical output
/// regardless of execution interleaving.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Joins all workers after draining outstanding tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Enqueues one task for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// One contiguous chunk of an index range (see `SplitRange`).
  struct Chunk {
    uint32_t index = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Splits `[0, n)` into at most `num_chunks` non-empty contiguous chunks
  /// of near-equal size (fewer when `n < num_chunks`). Deterministic.
  static std::vector<Chunk> SplitRange(uint64_t n, uint32_t num_chunks);

  /// Runs `fn(chunk)` for every chunk of `SplitRange(n, size())` on the
  /// workers and blocks until all chunks complete. Chunks are disjoint, so
  /// `fn` may write to per-chunk state without synchronization.
  void ParallelFor(uint64_t n,
                   const std::function<void(const Chunk&)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  uint64_t in_flight_ = 0;  // queued + currently executing tasks
  bool shutdown_ = false;
};

}  // namespace ppm

#endif  // PPM_UTIL_THREAD_POOL_H_
