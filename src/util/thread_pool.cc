#include "util/thread_pool.h"

#include <utility>

namespace ppm {

uint32_t ResolveThreadCount(uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<uint32_t>(hardware);
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::vector<ThreadPool::Chunk> ThreadPool::SplitRange(uint64_t n,
                                                      uint32_t num_chunks) {
  std::vector<Chunk> chunks;
  if (n == 0 || num_chunks == 0) return chunks;
  const uint64_t k = num_chunks < n ? num_chunks : n;
  chunks.reserve(k);
  for (uint64_t c = 0; c < k; ++c) {
    Chunk chunk;
    chunk.index = static_cast<uint32_t>(c);
    chunk.begin = n * c / k;
    chunk.end = n * (c + 1) / k;
    chunks.push_back(chunk);
  }
  return chunks;
}

void ThreadPool::ParallelFor(uint64_t n,
                             const std::function<void(const Chunk&)>& fn) {
  const std::vector<Chunk> chunks = SplitRange(n, size());
  if (chunks.empty()) return;
  if (chunks.size() == 1) {
    // Degenerate split: run inline, skipping the queue round-trip.
    fn(chunks[0]);
    return;
  }
  for (const Chunk& chunk : chunks) {
    Submit([&fn, chunk] { fn(chunk); });
  }
  Wait();
}

}  // namespace ppm
