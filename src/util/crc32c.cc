#include "util/crc32c.h"

#include <array>

namespace ppm::crc32c {

namespace {

/// Byte-wise lookup table for the reflected Castagnoli polynomial,
/// generated once at startup (256 entries, 1 KiB).
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ppm::crc32c
