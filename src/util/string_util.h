#ifndef PPM_UTIL_STRING_UTIL_H_
#define PPM_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ppm {

/// Splits `text` on `separator`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char separator);

/// Splits `text` on `separator`, dropping empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char separator);

/// Joins `pieces` with `separator` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a non-negative integer; fails on empty input, non-digits, or
/// overflow of `uint64_t`.
bool ParseUint64(std::string_view text, uint64_t* out);

}  // namespace ppm

#endif  // PPM_UTIL_STRING_UTIL_H_
