#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace ppm {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PPM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint32_t Rng::NextPoisson(double mean) {
  PPM_CHECK(mean > 0.0);
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    uint32_t count = 0;
    double product = NextDouble();
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  const double draw = mean + std::sqrt(mean) * NextGaussian();
  if (draw < 0.0) return 0;
  return static_cast<uint32_t>(std::lround(draw));
}

double Rng::NextExponential(double mean) {
  PPM_CHECK(mean > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  // Box-Muller; one value per call keeps the generator stateless beyond
  // `state_`, which keeps replays simple.
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return radius * std::cos(2.0 * M_PI * u2);
}

uint32_t Rng::NextZipf(uint32_t n, double s) {
  PPM_CHECK(n > 0);
  PPM_CHECK(s > 0.0);
  double total = 0.0;
  for (uint32_t rank = 1; rank <= n; ++rank) total += 1.0 / std::pow(rank, s);
  const double target = NextDouble() * total;
  double cumulative = 0.0;
  for (uint32_t rank = 1; rank <= n; ++rank) {
    cumulative += 1.0 / std::pow(rank, s);
    if (cumulative >= target) return rank - 1;
  }
  return n - 1;
}

}  // namespace ppm
