#ifndef PPM_UTIL_STOPWATCH_H_
#define PPM_UTIL_STOPWATCH_H_

#include <chrono>

namespace ppm {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last `Restart()`.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppm

#endif  // PPM_UTIL_STOPWATCH_H_
