#include "util/string_util.h"

#include <cctype>

namespace ppm {

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view text,
                                        char separator) {
  std::vector<std::string> pieces;
  for (std::string& piece : Split(text, separator)) {
    if (!piece.empty()) pieces.push_back(std::move(piece));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace ppm
