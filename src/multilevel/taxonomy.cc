#include "multilevel/taxonomy.h"

namespace ppm::multilevel {

Status Taxonomy::AddEdge(std::string_view child, std::string_view parent) {
  if (child == parent) {
    return Status::InvalidArgument("feature cannot be its own parent: " +
                                   std::string(child));
  }
  const std::string child_name(child);
  const auto it = parent_.find(child_name);
  if (it != parent_.end()) {
    if (it->second == parent) return Status::OK();  // Idempotent re-add.
    return Status::AlreadyExists("feature " + child_name +
                                 " already has parent " + it->second);
  }
  // Reject cycles: walking up from `parent` must not reach `child`.
  std::string cursor(parent);
  while (!cursor.empty()) {
    if (cursor == child) {
      return Status::InvalidArgument("edge would create a cycle at " +
                                     child_name);
    }
    cursor = ParentOf(cursor);
  }
  parent_.emplace(child_name, std::string(parent));
  return Status::OK();
}

std::string Taxonomy::ParentOf(std::string_view name) const {
  const auto it = parent_.find(std::string(name));
  if (it == parent_.end()) return std::string();
  return it->second;
}

uint32_t Taxonomy::DepthOf(std::string_view name) const {
  uint32_t depth = 1;
  std::string cursor = ParentOf(name);
  while (!cursor.empty()) {
    ++depth;
    cursor = ParentOf(cursor);
  }
  return depth;
}

std::string Taxonomy::AncestorAtDepth(std::string_view name,
                                      uint32_t depth) const {
  uint32_t my_depth = DepthOf(name);
  std::string cursor(name);
  while (my_depth > depth) {
    cursor = ParentOf(cursor);
    --my_depth;
  }
  return cursor;
}

uint32_t Taxonomy::MaxDepth() const {
  uint32_t max_depth = 1;
  for (const auto& [child, parent] : parent_) {
    const uint32_t depth = DepthOf(child);
    if (depth > max_depth) max_depth = depth;
  }
  return max_depth;
}

tsdb::TimeSeries GeneralizeToDepth(const tsdb::TimeSeries& series,
                                   const Taxonomy& taxonomy, uint32_t depth) {
  tsdb::TimeSeries generalized;
  // Precompute the id rewrite for every source feature.
  std::vector<tsdb::FeatureId> rewrite;
  rewrite.reserve(series.symbols().size());
  for (const std::string& name : series.symbols().names()) {
    rewrite.push_back(
        generalized.symbols().Intern(taxonomy.AncestorAtDepth(name, depth)));
  }
  for (const tsdb::FeatureSet& instant : series.instants()) {
    tsdb::FeatureSet mapped;
    instant.ForEach([&](uint32_t id) { mapped.Set(rewrite[id]); });
    generalized.Append(std::move(mapped));
  }
  return generalized;
}

Result<Taxonomy> TaxonomyFromPairs(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  Taxonomy taxonomy;
  for (const auto& [child, parent] : edges) {
    PPM_RETURN_IF_ERROR(taxonomy.AddEdge(child, parent));
  }
  return taxonomy;
}

}  // namespace ppm::multilevel
