#ifndef PPM_MULTILEVEL_MULTILEVEL_MINER_H_
#define PPM_MULTILEVEL_MULTILEVEL_MINER_H_

#include <cstdint>
#include <vector>

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "multilevel/taxonomy.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::multilevel {

/// The mining result at one abstraction level of a drill-down run.
struct LevelResult {
  /// Taxonomy depth mined (1 = most general).
  uint32_t depth = 0;
  /// The series generalized to `depth` (owns the symbol table the patterns
  /// of `result` are expressed in).
  tsdb::TimeSeries series;
  MiningResult result;
};

/// Level-shared drill-down mining (Section 6): mines the series generalized
/// to depth 1, then at each deeper level restricts candidate letters to
/// those whose generalized letter was frequent one level up ("progressively
/// drilling-down with the discovered periodic patterns to see whether they
/// are still periodic at a lower level").
///
/// `options.period` etc. apply at every level; `options.letter_filter` is
/// overridden internally. Returns one entry per depth from 1 to
/// `taxonomy.MaxDepth()`.
Result<std::vector<LevelResult>> MineDrillDown(const tsdb::TimeSeries& series,
                                               const Taxonomy& taxonomy,
                                               const MiningOptions& options);

}  // namespace ppm::multilevel

#endif  // PPM_MULTILEVEL_MULTILEVEL_MINER_H_
