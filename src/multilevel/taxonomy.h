#ifndef PPM_MULTILEVEL_TAXONOMY_H_
#define PPM_MULTILEVEL_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::multilevel {

/// A feature hierarchy (is-a taxonomy) over feature *names*.
///
/// Names are used rather than ids because generalizing a series produces a
/// new series with its own symbol table. A feature without a parent is a
/// root. Depth 1 is a root; a feature's depth is one more than its
/// parent's.
class Taxonomy {
 public:
  Taxonomy() = default;

  /// Declares `parent` as the parent of `child`. Fails if `child` already
  /// has a different parent or the edge would create a cycle.
  Status AddEdge(std::string_view child, std::string_view parent);

  /// Parent of `name`, or empty when `name` is a root / unknown.
  std::string ParentOf(std::string_view name) const;

  /// Ancestor of `name` at `depth` (1 = root of its chain). When `name`
  /// itself is at or above that depth, returns `name` unchanged, so features
  /// outside the taxonomy pass through generalization untouched.
  std::string AncestorAtDepth(std::string_view name, uint32_t depth) const;

  /// Depth of `name`: 1 for roots and unknown names.
  uint32_t DepthOf(std::string_view name) const;

  /// Largest depth of any declared feature (1 when empty).
  uint32_t MaxDepth() const;

 private:
  std::unordered_map<std::string, std::string> parent_;
};

/// Rewrites every feature of `series` to its ancestor at `depth`, producing
/// the level-`depth` generalized series of Section 6's level-shared mining.
tsdb::TimeSeries GeneralizeToDepth(const tsdb::TimeSeries& series,
                                   const Taxonomy& taxonomy, uint32_t depth);

/// Builds a taxonomy from (child, parent) name pairs (e.g. the `hierarchy`
/// of `discretize::DiscretizeMultiLevel`).
Result<Taxonomy> TaxonomyFromPairs(
    const std::vector<std::pair<std::string, std::string>>& edges);

}  // namespace ppm::multilevel

#endif  // PPM_MULTILEVEL_TAXONOMY_H_
