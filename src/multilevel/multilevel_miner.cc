#include "multilevel/multilevel_miner.h"

#include <set>
#include <string>
#include <utility>

#include "core/hitset_miner.h"
#include "tsdb/series_source.h"

namespace ppm::multilevel {

Result<std::vector<LevelResult>> MineDrillDown(const tsdb::TimeSeries& series,
                                               const Taxonomy& taxonomy,
                                               const MiningOptions& options) {
  const uint32_t max_depth = taxonomy.MaxDepth();
  std::vector<LevelResult> levels;

  // Frequent letters of the previous (more general) level, as
  // (position, generalized feature name) pairs.
  std::set<std::pair<uint32_t, std::string>> frequent_above;

  for (uint32_t depth = 1; depth <= max_depth; ++depth) {
    LevelResult level;
    level.depth = depth;
    level.series = GeneralizeToDepth(series, taxonomy, depth);

    MiningOptions level_options = options;
    if (depth > 1) {
      const tsdb::SymbolTable* symbols = &level.series.symbols();
      const Taxonomy* tax = &taxonomy;
      const auto* above = &frequent_above;
      level_options.letter_filter = [symbols, tax, above, depth](
                                        uint32_t position,
                                        tsdb::FeatureId feature) {
        const std::string name = symbols->NameOrPlaceholder(feature);
        const std::string parent = tax->AncestorAtDepth(name, depth - 1);
        return above->contains({position, parent});
      };
    }

    tsdb::InMemorySeriesSource source(&level.series);
    PPM_ASSIGN_OR_RETURN(level.result, MineHitSet(source, level_options));

    // Collect this level's frequent letters for the next level's filter.
    frequent_above.clear();
    for (const FrequentPattern& entry : level.result.patterns()) {
      if (entry.pattern.LetterCount() != 1) continue;
      for (uint32_t position = 0; position < entry.pattern.period();
           ++position) {
        entry.pattern.at(position).ForEach([&](uint32_t feature) {
          frequent_above.insert(
              {position, level.series.symbols().NameOrPlaceholder(feature)});
        });
      }
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

}  // namespace ppm::multilevel
