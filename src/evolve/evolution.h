#ifndef PPM_EVOLVE_EVOLUTION_H_
#define PPM_EVOLVE_EVOLUTION_H_

#include <cstdint>
#include <vector>

#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::evolve {

/// Frequent patterns of one time window of the series.
struct WindowResult {
  /// First instant of the window.
  uint64_t start = 0;
  /// Number of instants in the window.
  uint64_t length = 0;
  MiningResult result;
};

/// Mining partial periodicity with *evolution* (Section 6): the periodic
/// behaviour itself may change over the life of the series, so a single
/// whole-series run blurs old and new regimes together. `MineWindows`
/// splits the series into consecutive non-overlapping windows of
/// `window_length` instants and mines each independently (hit-set miner,
/// same options). A trailing partial window shorter than one period is
/// dropped; a final window with at least one whole period is kept.
Result<std::vector<WindowResult>> MineWindows(const tsdb::TimeSeries& series,
                                              uint64_t window_length,
                                              const MiningOptions& options);

/// Differences between two mined pattern sets (e.g. adjacent windows).
struct PatternChange {
  Pattern pattern;
  double before_confidence = 0.0;
  double after_confidence = 0.0;
};
struct PatternDiff {
  /// Frequent after but not before.
  std::vector<FrequentPattern> appeared;
  /// Frequent before but not after.
  std::vector<FrequentPattern> vanished;
  /// Frequent in both with |Δconfidence| >= the reporting threshold.
  std::vector<PatternChange> shifted;
};

/// Diffs two results; `min_shift` is the confidence delta below which a
/// pattern present in both is not reported in `shifted`.
PatternDiff DiffResults(const MiningResult& before, const MiningResult& after,
                        double min_shift = 0.05);

/// How persistently each pattern (ever frequent in any window) stays
/// frequent across all windows.
struct PatternStability {
  Pattern pattern;
  /// Windows in which the pattern was frequent.
  uint32_t windows_present = 0;
  /// Mean confidence over the windows where present.
  double mean_confidence = 0.0;
};

/// Aggregates window results into a per-pattern stability report, sorted by
/// `windows_present` descending then mean confidence descending.
std::vector<PatternStability> StabilityReport(
    const std::vector<WindowResult>& windows);

}  // namespace ppm::evolve

#endif  // PPM_EVOLVE_EVOLUTION_H_
