#include "evolve/evolution.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/hitset_miner.h"
#include "tsdb/series_source.h"

namespace ppm::evolve {

Result<std::vector<WindowResult>> MineWindows(const tsdb::TimeSeries& series,
                                              uint64_t window_length,
                                              const MiningOptions& options) {
  if (window_length == 0) {
    return Status::InvalidArgument("window_length must be positive");
  }
  if (options.period == 0 || window_length < options.period) {
    return Status::InvalidArgument(
        "window_length must hold at least one period");
  }

  std::vector<WindowResult> windows;
  for (uint64_t start = 0; start + options.period <= series.length();
       start += window_length) {
    WindowResult window;
    window.start = start;
    window.length = std::min<uint64_t>(window_length, series.length() - start);
    if (window.length < options.period) break;  // Sub-period tail: drop.

    // Copy the window into its own series; symbol table is shared content
    // (ids are preserved by copying the table itself).
    tsdb::TimeSeries slice;
    slice.symbols() = series.symbols();
    for (uint64_t t = start; t < start + window.length; ++t) {
      slice.Append(series.at(t));
    }
    tsdb::InMemorySeriesSource source(&slice);
    PPM_ASSIGN_OR_RETURN(window.result, MineHitSet(source, options));
    windows.push_back(std::move(window));
  }
  return windows;
}

PatternDiff DiffResults(const MiningResult& before, const MiningResult& after,
                        double min_shift) {
  PatternDiff diff;
  std::unordered_map<Pattern, const FrequentPattern*, PatternHash> before_map;
  before_map.reserve(before.size());
  for (const FrequentPattern& entry : before.patterns()) {
    before_map.emplace(entry.pattern, &entry);
  }

  std::unordered_map<Pattern, bool, PatternHash> seen_in_after;
  for (const FrequentPattern& entry : after.patterns()) {
    seen_in_after.emplace(entry.pattern, true);
    const auto it = before_map.find(entry.pattern);
    if (it == before_map.end()) {
      diff.appeared.push_back(entry);
      continue;
    }
    const double delta = entry.confidence - it->second->confidence;
    if (delta >= min_shift || delta <= -min_shift) {
      diff.shifted.push_back(
          PatternChange{entry.pattern, it->second->confidence,
                        entry.confidence});
    }
  }
  for (const FrequentPattern& entry : before.patterns()) {
    if (!seen_in_after.contains(entry.pattern)) {
      diff.vanished.push_back(entry);
    }
  }
  return diff;
}

std::vector<PatternStability> StabilityReport(
    const std::vector<WindowResult>& windows) {
  std::map<Pattern, PatternStability> accumulator;
  for (const WindowResult& window : windows) {
    for (const FrequentPattern& entry : window.result.patterns()) {
      PatternStability& stability = accumulator[entry.pattern];
      stability.pattern = entry.pattern;
      ++stability.windows_present;
      stability.mean_confidence += entry.confidence;
    }
  }
  std::vector<PatternStability> report;
  report.reserve(accumulator.size());
  for (auto& [pattern, stability] : accumulator) {
    stability.mean_confidence /=
        static_cast<double>(stability.windows_present);
    report.push_back(std::move(stability));
  }
  std::stable_sort(report.begin(), report.end(),
                   [](const PatternStability& a, const PatternStability& b) {
                     if (a.windows_present != b.windows_present) {
                       return a.windows_present > b.windows_present;
                     }
                     return a.mean_confidence > b.mean_confidence;
                   });
  return report;
}

}  // namespace ppm::evolve
