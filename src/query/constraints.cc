#include "query/constraints.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace ppm::query {

namespace {

Status ValidateConstraints(const MiningOptions& options,
                           const Constraints& constraints) {
  if (constraints.offset_low > constraints.offset_high) {
    return Status::InvalidArgument("offset_low above offset_high");
  }
  const std::unordered_set<tsdb::FeatureId> allowed(
      constraints.allowed_features.begin(), constraints.allowed_features.end());
  for (const Letter& letter : constraints.required_letters) {
    if (letter.position >= options.period) {
      return Status::InvalidArgument("required letter beyond period");
    }
    if (letter.position < constraints.offset_low ||
        letter.position > constraints.offset_high) {
      return Status::InvalidArgument(
          "required letter outside the allowed offset window");
    }
    if (!allowed.empty() && !allowed.contains(letter.feature)) {
      return Status::InvalidArgument(
          "required letter's feature is not in allowed_features");
    }
  }
  if (constraints.max_letters != 0) {
    const uint64_t required = constraints.required_letters.size();
    if (required > constraints.max_letters) {
      return Status::InvalidArgument(
          "more required letters than max_letters allows");
    }
    if (constraints.min_l_length > constraints.max_letters) {
      return Status::InvalidArgument("min_l_length exceeds max_letters");
    }
  }
  return Status::OK();
}

bool ContainsLetter(const Pattern& pattern, const Letter& letter) {
  if (letter.position >= pattern.period()) return false;
  return pattern.at(letter.position).Test(letter.feature);
}

}  // namespace

std::vector<FrequentPattern> FilterPatterns(const MiningResult& result,
                                            const Constraints& constraints) {
  std::vector<FrequentPattern> filtered;
  for (const FrequentPattern& entry : result.patterns()) {
    if (entry.pattern.LLength() < constraints.min_l_length) continue;
    if (constraints.max_letters != 0 &&
        entry.pattern.LetterCount() > constraints.max_letters) {
      continue;
    }
    bool ok = true;
    for (const Letter& letter : constraints.required_letters) {
      if (!ContainsLetter(entry.pattern, letter)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    // Allowed-set and window checks (no-ops when mining already pushed them
    // down; meaningful when filtering a pre-existing result).
    if (!constraints.allowed_features.empty() ||
        constraints.offset_low > 0 || constraints.offset_high != UINT32_MAX) {
      const std::unordered_set<tsdb::FeatureId> allowed(
          constraints.allowed_features.begin(),
          constraints.allowed_features.end());
      for (uint32_t position = 0; ok && position < entry.pattern.period();
           ++position) {
        entry.pattern.at(position).ForEach([&](uint32_t feature) {
          if (position < constraints.offset_low ||
              position > constraints.offset_high) {
            ok = false;
          }
          if (!allowed.empty() && !allowed.contains(feature)) ok = false;
        });
      }
      if (!ok) continue;
    }
    filtered.push_back(entry);
  }

  if (constraints.top_k != 0 && filtered.size() > constraints.top_k) {
    // Canonical order is already stable; pick the k highest confidences.
    std::stable_sort(filtered.begin(), filtered.end(),
                     [](const FrequentPattern& a, const FrequentPattern& b) {
                       return a.confidence > b.confidence;
                     });
    filtered.resize(constraints.top_k);
    std::stable_sort(filtered.begin(), filtered.end(),
                     [](const FrequentPattern& a, const FrequentPattern& b) {
                       const uint32_t la = a.pattern.LetterCount();
                       const uint32_t lb = b.pattern.LetterCount();
                       if (la != lb) return la < lb;
                       return a.pattern < b.pattern;
                     });
  }
  return filtered;
}

Result<MiningResult> MineConstrained(tsdb::SeriesSource& source,
                                     const MiningOptions& options,
                                     const Constraints& constraints,
                                     Algorithm algorithm) {
  PPM_RETURN_IF_ERROR(ValidateConstraints(options, constraints));

  // Push down the anti-monotone constraints: letter admissibility composes
  // with any user-supplied filter, and the letter cap takes the tighter of
  // the two.
  MiningOptions pushed = options;
  const std::unordered_set<tsdb::FeatureId> allowed(
      constraints.allowed_features.begin(), constraints.allowed_features.end());
  const auto user_filter = options.letter_filter;
  const uint32_t offset_low = constraints.offset_low;
  const uint32_t offset_high = constraints.offset_high;
  pushed.letter_filter = [allowed, offset_low, offset_high, user_filter](
                             uint32_t position, tsdb::FeatureId feature) {
    if (position < offset_low || position > offset_high) return false;
    if (!allowed.empty() && !allowed.contains(feature)) return false;
    if (user_filter && !user_filter(position, feature)) return false;
    return true;
  };
  if (constraints.max_letters != 0) {
    pushed.max_letters = pushed.max_letters == 0
                             ? constraints.max_letters
                             : std::min(pushed.max_letters,
                                        constraints.max_letters);
  }

  PPM_ASSIGN_OR_RETURN(MiningResult mined, Mine(source, pushed, algorithm));

  // Monotone constraints + top-k on the result set.
  MiningResult result;
  result.stats() = mined.stats();
  result.patterns() = FilterPatterns(mined, constraints);
  return result;
}

}  // namespace ppm::query
