#ifndef PPM_QUERY_CONSTRAINTS_H_
#define PPM_QUERY_CONSTRAINTS_H_

#include <cstdint>
#include <vector>

#include "core/letter_space.h"
#include "core/miner.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/series_source.h"
#include "util/status.h"

namespace ppm::query {

/// Constraint- and query-based mining of partial periodicity (Section 6,
/// discussing Ng et al. [11]): rather than mining everything and grepping,
/// the user states what patterns qualify and the miner exploits the
/// constraints.
///
/// Two constraint classes are handled differently, following the
/// anti-monotone/succinct classification of [11]:
///  * *anti-monotone / succinct* constraints (allowed letters, allowed
///    offset window, maximum letters) are pushed into the mining itself --
///    disallowed letters never enter `C_max`, shrinking every later stage;
///  * *monotone* constraints (required letters, minimum L-length) cannot
///    prune a growing pattern and are applied to the result set.
struct Constraints {
  /// Only letters whose feature is in this set may appear (empty = all).
  std::vector<tsdb::FeatureId> allowed_features;

  /// Only period offsets in `[offset_low, offset_high]` may carry letters.
  /// Defaults cover the whole period.
  uint32_t offset_low = 0;
  uint32_t offset_high = UINT32_MAX;

  /// Reported patterns must contain every one of these letters.
  std::vector<Letter> required_letters;

  /// Reported patterns must have at least this L-length.
  uint32_t min_l_length = 0;

  /// Reported patterns must have at most this many letters (0 = unlimited).
  /// Anti-monotone: pushed into the level cap.
  uint32_t max_letters = 0;

  /// Keep only the `top_k` patterns with the highest confidence (ties by
  /// canonical order); 0 keeps everything. Applied last.
  uint32_t top_k = 0;
};

/// Mines with `options` under `constraints`. `options.letter_filter` and
/// `options.max_letters` are combined with (not replaced by) the
/// constraint pushdowns. Fails on inconsistent constraints (e.g. a required
/// letter outside the allowed window).
Result<MiningResult> MineConstrained(
    tsdb::SeriesSource& source, const MiningOptions& options,
    const Constraints& constraints,
    Algorithm algorithm = Algorithm::kMaxSubpatternHitSet);

/// The post-filter half of `MineConstrained`, exposed for applying the same
/// query to an existing result (e.g. successive queries over one mining
/// run, the "exploratory mining" loop of [11]).
std::vector<FrequentPattern> FilterPatterns(const MiningResult& result,
                                            const Constraints& constraints);

}  // namespace ppm::query

#endif  // PPM_QUERY_CONSTRAINTS_H_
