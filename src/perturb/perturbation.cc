#include "perturb/perturbation.h"

namespace ppm::perturb {

tsdb::TimeSeries EnlargeTimeSlots(const tsdb::TimeSeries& series,
                                  uint32_t half_window) {
  tsdb::TimeSeries enlarged;
  enlarged.symbols() = series.symbols();
  const uint64_t n = series.length();
  for (uint64_t t = 0; t < n; ++t) {
    const uint64_t begin = t >= half_window ? t - half_window : 0;
    const uint64_t end = t + half_window + 1 < n ? t + half_window + 1 : n;
    tsdb::FeatureSet merged;
    for (uint64_t i = begin; i < end; ++i) merged.UnionWith(series.at(i));
    enlarged.Append(std::move(merged));
  }
  return enlarged;
}

Result<MiningResult> MineWithPerturbation(const tsdb::TimeSeries& series,
                                          const MiningOptions& options,
                                          uint32_t half_window,
                                          Algorithm algorithm) {
  const tsdb::TimeSeries enlarged = EnlargeTimeSlots(series, half_window);
  return Mine(enlarged, options, algorithm);
}

}  // namespace ppm::perturb
