#ifndef PPM_PERTURB_PERTURBATION_H_
#define PPM_PERTURB_PERTURBATION_H_

#include <cstdint>

#include "core/miner.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::perturb {

/// Slot enlargement for perturbation-tolerant mining (Section 6): each
/// instant's feature set is replaced by the union of the feature sets within
/// `half_window` instants on either side, so events that drift a little in
/// time still land in the slot being analyzed. `half_window == 0` returns a
/// copy of the input.
tsdb::TimeSeries EnlargeTimeSlots(const tsdb::TimeSeries& series,
                                  uint32_t half_window);

/// Mines `series` after slot enlargement. Confidences are computed against
/// the enlarged series; patterns tolerate occurrence jitter up to
/// `half_window` instants.
Result<MiningResult> MineWithPerturbation(
    const tsdb::TimeSeries& series, const MiningOptions& options,
    uint32_t half_window,
    Algorithm algorithm = Algorithm::kMaxSubpatternHitSet);

}  // namespace ppm::perturb

#endif  // PPM_PERTURB_PERTURBATION_H_
