#ifndef PPM_MULTIDIM_MULTIDIM_H_
#define PPM_MULTIDIM_MULTIDIM_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/mining_result.h"
#include "core/pattern.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::multidim {

/// Multi-dimensional partial periodicity (Section 6): the data at each
/// instant has values along several dimensions (e.g. weather, traffic,
/// day-type), and patterns may mix letters from different dimensions --
/// "cold AND jammed every Monday morning".
///
/// The encoding is the standard one: each dimension's value at instant `t`
/// becomes the feature `<dimension>:<value>` in a single combined series,
/// after which the ordinary miners apply unchanged. This builder zips
/// parallel value streams, and the helpers below slice mined patterns back
/// into per-dimension views.
class DimensionedSeriesBuilder {
 public:
  DimensionedSeriesBuilder() = default;

  /// Adds one dimension with one value per instant. Every dimension must
  /// have the same length; an empty value string means "no observation"
  /// along that dimension at that instant. Fails on a duplicate dimension
  /// name, an empty name, or a name containing ':'.
  Status AddDimension(std::string_view name,
                      const std::vector<std::string>& values);

  /// Builds the combined series. Fails when no dimension was added.
  Result<tsdb::TimeSeries> Build() const;

  /// Dimension names added so far, in insertion order.
  const std::vector<std::string>& dimensions() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::string>> values_;
};

/// The separator between dimension and value in combined feature names.
inline constexpr char kDimensionSeparator = ':';

/// Dimension of a combined feature name ("" when the name has no
/// separator, i.e. was not produced by the builder).
std::string_view DimensionOf(std::string_view feature_name);

/// The sub-pattern of `pattern` containing only the letters of `dimension`.
Pattern ProjectPattern(const Pattern& pattern,
                       const tsdb::SymbolTable& symbols,
                       std::string_view dimension);

/// Number of distinct dimensions appearing in `pattern`.
uint32_t DimensionCount(const Pattern& pattern,
                        const tsdb::SymbolTable& symbols);

/// The entries of `result` whose pattern spans at least `min_dimensions`
/// distinct dimensions -- the genuinely inter-dimensional regularities
/// (single-dimension patterns are already found by mining that dimension
/// alone).
std::vector<FrequentPattern> CrossDimensionalPatterns(
    const MiningResult& result, const tsdb::SymbolTable& symbols,
    uint32_t min_dimensions = 2);

}  // namespace ppm::multidim

#endif  // PPM_MULTIDIM_MULTIDIM_H_
