#include "multidim/multidim.h"

#include <set>

namespace ppm::multidim {

Status DimensionedSeriesBuilder::AddDimension(
    std::string_view name, const std::vector<std::string>& values) {
  if (name.empty()) return Status::InvalidArgument("empty dimension name");
  if (name.find(kDimensionSeparator) != std::string_view::npos) {
    return Status::InvalidArgument("dimension name contains ':': " +
                                   std::string(name));
  }
  for (const std::string& existing : names_) {
    if (existing == name) {
      return Status::AlreadyExists("duplicate dimension: " + std::string(name));
    }
  }
  if (!values_.empty() && values.size() != values_.front().size()) {
    return Status::InvalidArgument(
        "dimension " + std::string(name) + " has " +
        std::to_string(values.size()) + " instants, expected " +
        std::to_string(values_.front().size()));
  }
  names_.emplace_back(name);
  values_.push_back(values);
  return Status::OK();
}

Result<tsdb::TimeSeries> DimensionedSeriesBuilder::Build() const {
  if (names_.empty()) {
    return Status::InvalidArgument("no dimensions added");
  }
  tsdb::TimeSeries series;
  const size_t length = values_.front().size();
  for (size_t t = 0; t < length; ++t) {
    tsdb::FeatureSet instant;
    for (size_t dim = 0; dim < names_.size(); ++dim) {
      const std::string& value = values_[dim][t];
      if (value.empty()) continue;  // No observation in this dimension.
      std::string feature = names_[dim];
      feature += kDimensionSeparator;
      feature += value;
      instant.Set(series.symbols().Intern(feature));
    }
    series.Append(std::move(instant));
  }
  return series;
}

std::string_view DimensionOf(std::string_view feature_name) {
  const size_t separator = feature_name.find(kDimensionSeparator);
  if (separator == std::string_view::npos) return std::string_view();
  return feature_name.substr(0, separator);
}

Pattern ProjectPattern(const Pattern& pattern,
                       const tsdb::SymbolTable& symbols,
                       std::string_view dimension) {
  Pattern projected(pattern.period());
  for (uint32_t position = 0; position < pattern.period(); ++position) {
    pattern.at(position).ForEach([&](uint32_t feature) {
      if (DimensionOf(symbols.NameOrPlaceholder(feature)) == dimension) {
        projected.AddLetter(position, feature);
      }
    });
  }
  return projected;
}

uint32_t DimensionCount(const Pattern& pattern,
                        const tsdb::SymbolTable& symbols) {
  std::set<std::string> dimensions;
  for (uint32_t position = 0; position < pattern.period(); ++position) {
    pattern.at(position).ForEach([&](uint32_t feature) {
      dimensions.insert(
          std::string(DimensionOf(symbols.NameOrPlaceholder(feature))));
    });
  }
  return static_cast<uint32_t>(dimensions.size());
}

std::vector<FrequentPattern> CrossDimensionalPatterns(
    const MiningResult& result, const tsdb::SymbolTable& symbols,
    uint32_t min_dimensions) {
  std::vector<FrequentPattern> cross;
  for (const FrequentPattern& entry : result.patterns()) {
    if (DimensionCount(entry.pattern, symbols) >= min_dimensions) {
      cross.push_back(entry);
    }
  }
  return cross;
}

}  // namespace ppm::multidim
