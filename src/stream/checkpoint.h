#ifndef PPM_STREAM_CHECKPOINT_H_
#define PPM_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/continuous_miner.h"
#include "stream/streaming_miner.h"
#include "tsdb/symbol_table.h"
#include "tsdb/wal.h"
#include "util/status.h"

namespace ppm::stream {

/// Versioned, CRC-framed checkpoint of a continuous (or streaming) miner,
/// the other half of crash-safe streaming (docs/ROBUSTNESS.md "Crash
/// recovery"):
///
///   magic        8 bytes   "PPMCKP1\n"
///   state_len    u64       bytes in the state block
///   state_crc    u32       CRC32C of the state block
///   state block  state_len bytes (see docs/FILE_FORMATS.md)
///
/// Checkpoints are written atomically (tmp -> fsync -> rename -> dir fsync
/// via `fsutil::AtomicWriteFile`), so the last good checkpoint survives any
/// failed write. Recovery = load checkpoint + replay the WAL tail from the
/// checkpoint's instant cursor; the protocol keeps the invariant that the
/// checkpoint is never ahead of the durable WAL.
inline constexpr char kCheckpointMagic[8] = {'P', 'P', 'M', 'C',
                                             'K', 'P', '1', '\n'};

/// Current state-block version. Version 2 added the sliding-window
/// eviction state (`window_segments` + retained segment masks); version-1
/// blocks are still read, decoding as whole-history (no window) state.
inline constexpr uint32_t kCheckpointVersion = 2;

/// Canonical file names inside a checkpoint directory.
std::string CheckpointPath(const std::string& dir);
std::string WalPath(const std::string& dir);

/// Everything a checkpoint file stores: the mining configuration the
/// stream was started with, the symbol names interned so far, and the full
/// miner state (the continuous state; a `StreamingMiner` checkpoint is the
/// window-less case, `state.core` alone).
struct CheckpointData {
  uint32_t period = 0;
  double min_confidence = 0.0;
  uint64_t min_count = 0;
  uint32_t max_letters = 0;
  HitStoreKind hit_store = HitStoreKind::kMaxSubpatternTree;
  std::vector<std::string> symbols;
  ContinuousMinerState state;
};

/// Serializes `miner` + `symbols` and atomically replaces the checkpoint
/// in `dir`. On any failure the previous checkpoint is untouched.
Status WriteCheckpoint(const ContinuousMiner& miner,
                       const tsdb::SymbolTable& symbols,
                       const std::string& dir);
Status WriteCheckpoint(const StreamingMiner& miner,
                       const tsdb::SymbolTable& symbols,
                       const std::string& dir);

/// Reads and fully validates a checkpoint file. `NotFound` when absent;
/// any framing, CRC, bounds, or trailing-byte problem is `kCorruption`.
Result<CheckpointData> ReadCheckpoint(const std::string& path);

/// Rebuilds a continuous miner from checkpoint data. `runtime` supplies
/// the non-serialized runtime knobs (cancellation, deadline, budget, and
/// the compaction cadence); the serialized configuration wins for period,
/// thresholds, hit store, and window so a resumed stream mines exactly
/// like the original.
Result<std::unique_ptr<ContinuousMiner>> RestoreContinuousMiner(
    const CheckpointData& data, const MiningOptions& runtime,
    uint32_t compact_every = 0);

/// Whole-history facade of `RestoreContinuousMiner`: rejects checkpoints
/// that carry a pattern window (`kCorruption` -- a windowed stream cannot
/// be resumed as a `StreamingMiner` without silently changing results).
Result<std::unique_ptr<StreamingMiner>> RestoreMiner(
    const CheckpointData& data, const MiningOptions& runtime);

/// Result of `RecoverContinuousStream`: the restored-and-caught-up miner,
/// the symbol names at checkpoint time, and what the WAL replay found.
struct RecoveredContinuousStream {
  std::unique_ptr<ContinuousMiner> miner;
  std::vector<std::string> symbols;
  tsdb::WalReplayInfo wal;
};

/// Result of `RecoverStream` (whole-history facade).
struct RecoveredStream {
  std::unique_ptr<StreamingMiner> miner;
  std::vector<std::string> symbols;
  tsdb::WalReplayInfo wal;
};

/// Full crash recovery for the checkpoint directory `dir`: load the
/// checkpoint, restore the miner, and replay the WAL tail (records at or
/// past the checkpoint's instant cursor) into it. `NotFound` when no
/// checkpoint exists; a WAL missing or durably behind the checkpoint is
/// `kCorruption` (the protocol syncs the WAL before every checkpoint).
Result<RecoveredContinuousStream> RecoverContinuousStream(
    const std::string& dir, const MiningOptions& runtime,
    uint32_t compact_every = 0);
Result<RecoveredStream> RecoverStream(const std::string& dir,
                                      const MiningOptions& runtime);

/// The checkpoint barrier: syncs `wal` (so every instant the checkpoint
/// covers is durable first) and then atomically writes the checkpoint.
Status CheckpointStream(const ContinuousMiner& miner, tsdb::WalWriter& wal,
                        const tsdb::SymbolTable& symbols,
                        const std::string& dir);
Status CheckpointStream(const StreamingMiner& miner, tsdb::WalWriter& wal,
                        const tsdb::SymbolTable& symbols,
                        const std::string& dir);

}  // namespace ppm::stream

#endif  // PPM_STREAM_CHECKPOINT_H_
