#ifndef PPM_STREAM_CONTINUOUS_MINER_H_
#define PPM_STREAM_CONTINUOUS_MINER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/f1_scan.h"
#include "core/hit_store.h"
#include "core/letter_space.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "obs/metrics.h"
#include "stream/streaming_miner.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::stream {

/// Engine configuration beyond `MiningOptions`: the drift-detection window,
/// the pattern sliding window, and the compaction cadence.
struct ContinuousOptions {
  /// Horizon for `DriftedLetters` over unseeded letters (segments; 0 = the
  /// whole stream). Same semantics as `StreamingMiner`'s drift window.
  uint32_t drift_window = 0;
  /// Pattern sliding window in committed segments. 0 mines the entire
  /// history; W > 0 means every query reflects exactly the last
  /// min(W, segments_committed) whole segments -- when the W+1st segment
  /// commits, the oldest retained segment's contribution to the F1 counts
  /// and the hit store is withdrawn, so confidences are local-interval
  /// frequencies over the recent window.
  uint32_t window_segments = 0;
  /// Rebuild the hit store every `compact_every` committed segments to
  /// reclaim dead (count-0) tree nodes left behind by eviction; 0 never
  /// compacts automatically. Compaction is invisible to queries and to
  /// exported state, so the cadence is a runtime knob, not persisted state.
  uint32_t compact_every = 0;
};

/// The complete serializable state of a `ContinuousMiner`: the streaming
/// core plus the sliding-window eviction state. Deterministic like
/// `StreamingMinerState`; the codec lives in `stream/checkpoint.h` (state
/// block version 2).
struct ContinuousMinerState {
  StreamingMinerState core;
  uint32_t window_segments = 0;
  /// Seeded letter-index masks of the retained committed segments, oldest
  /// first, each sorted ascending. Present only with a finite window;
  /// size == min(window_segments, core.segments_committed). Summing these
  /// masks per letter reproduces `core.seeded_counts` exactly, and the
  /// multiset of masks with >= 2 letters reproduces `core.hits` -- both
  /// invariants are re-validated on `Restore`.
  std::vector<std::vector<uint32_t>> window_masks;
};

/// Continuous partial periodic pattern mining over an append-only series:
/// the generalization of `StreamingMiner` (which now delegates here).
///
/// Maintains the F1 letter counts, the `C_max` letter space, and the
/// max-subpattern hit store incrementally per appended segment, so a
/// pattern query (`Snapshot`) against a live series costs O(hit store) --
/// independent of how many instants have ever been appended -- instead of
/// the O(n) of a from-scratch batch mine. With a finite `window_segments`,
/// each newly committed segment also evicts the expired oldest segment's
/// contribution (decrementing its letters' counts and withdrawing its hit
/// mask), so `Snapshot` is exactly a batch mine of the last W whole
/// segments restricted to the seeded letter space -- the equivalence
/// contract `tests/incremental_equivalence_test.cc` enforces.
///
/// Eviction leaves dead count-0 nodes in the tree-backed hit store;
/// `Compact` (manual, or every `compact_every` commits) rebuilds the store
/// from its live hits. Compaction never changes the logical hit multiset,
/// so exported state, queries, and checkpoints are identical before and
/// after -- which is what makes recovery from a mid-compaction kill
/// trivially exact.
class ContinuousMiner {
 public:
  /// Creates a miner for patterns of `options.period`, tracking exactly
  /// `seed_letters` as pattern letters (sorted/deduplicated internally).
  /// `options` must validate with a nonzero period.
  static Result<std::unique_ptr<ContinuousMiner>> Create(
      const MiningOptions& options, std::vector<Letter> seed_letters,
      const ContinuousOptions& continuous = {});

  /// Convenience: seeds the letter space with the frequent 1-patterns of
  /// `prefix` (mined with `options`), then replays the prefix into the
  /// miner -- with a finite window, the replay already evicts, so the state
  /// covers exactly the prefix's trailing window.
  static Result<std::unique_ptr<ContinuousMiner>> SeedFromPrefix(
      const MiningOptions& options, const tsdb::TimeSeries& prefix,
      const ContinuousOptions& continuous = {});

  /// Rebuilds a miner from a previously exported state. Every structural
  /// invariant is re-validated -- including that the window masks exactly
  /// reproduce the seeded counts and the hit multiset -- and any violation
  /// is `kCorruption`: a restored miner is either exactly equivalent to the
  /// exporter or an error, never silently wrong. `compact_every` is the
  /// runtime compaction cadence (not part of the state).
  static Result<std::unique_ptr<ContinuousMiner>> Restore(
      const MiningOptions& options, const ContinuousMinerState& state,
      uint32_t compact_every = 0);

  /// Deterministic full-state export: equal miners export equal states.
  ContinuousMinerState ExportState() const;

  /// Feeds the next instant. Whole segments commit as their last instant
  /// arrives (evicting the expired segment when the window is full); a
  /// trailing partial segment is held back from every count.
  void Append(const tsdb::FeatureSet& instant);

  /// Derives the currently frequent patterns over the seeded letter space
  /// and the effective window. Cost is independent of the stream length.
  MiningResult Snapshot() const;

  /// Unseeded letters frequent over the drift horizon (see
  /// `StreamingMiner::DriftedLetters`).
  std::vector<Letter> DriftedLetters() const;

  /// Rebuilds the hit store from its live (nonzero) hits, dropping the
  /// dead interior nodes eviction leaves behind. A no-op on the logical
  /// state; records `ppm.stream.incremental.compactions` and
  /// `.nodes_reclaimed`.
  void Compact();

  /// Approximate bytes of the miner's owned state (hit store, counts,
  /// window masks) -- the figure the serving layer's cache accounting and
  /// LRU eviction charge per resident miner.
  uint64_t ApproxMemoryBytes() const;

  uint64_t instants_seen() const { return instants_seen_; }

  /// Whole segments committed over the stream's lifetime.
  uint64_t segments_committed() const { return segments_committed_; }

  /// The `m` a query divides by: min(window_segments, segments_committed)
  /// with a finite window, else segments_committed.
  uint64_t effective_segments() const {
    return window_segments_ > 0 ? window_masks_.size() : segments_committed_;
  }

  /// Segments whose contributions have been evicted from the window.
  uint64_t segments_evicted() const { return segments_evicted_; }

  /// Exact per-letter counts over the effective window, indexed like
  /// `space().letters()` -- the incremental F1 row the differential
  /// harness checks against a recount of the shadow window.
  const std::vector<uint64_t>& seeded_counts() const { return seeded_counts_; }

  const LetterSpace& space() const { return space_; }
  const MiningOptions& options() const { return options_; }
  uint32_t drift_window() const { return drift_window_; }
  uint32_t window_segments() const { return window_segments_; }
  uint32_t compact_every() const { return compact_every_; }

 private:
  ContinuousMiner(const MiningOptions& options, LetterSpace space,
                  const ContinuousOptions& continuous);

  void CommitSegment();
  void EvictOldestSegment();

  MiningOptions options_;
  LetterSpace space_;
  uint32_t drift_window_;
  uint32_t window_segments_;
  uint32_t compact_every_;
  std::unique_ptr<HitStore> store_;

  // Exact counts for seeded letters over the effective window (indexed by
  // letter) and for every other observed (position, feature) pair over the
  // drift horizon.
  std::vector<uint64_t> seeded_counts_;
  std::vector<std::unordered_map<tsdb::FeatureId, uint64_t>> other_counts_;
  // With a finite drift window: the unseeded letters of each of the last
  // `drift_window_` committed segments (drift eviction).
  std::deque<std::vector<Letter>> window_history_;
  // With a finite pattern window: the seeded mask bits of each retained
  // committed segment, oldest first (pattern eviction).
  std::deque<std::vector<uint32_t>> window_masks_;

  // In-flight segment state; committed only when the segment completes.
  Bitset segment_mask_;
  std::vector<Letter> pending_other_;
  uint32_t segment_position_ = 0;

  uint64_t instants_seen_ = 0;
  uint64_t segments_committed_ = 0;
  uint64_t segments_evicted_ = 0;

  // Stream traffic metrics (`ppm.stream.*` / `ppm.stream.incremental.*`),
  // process-global like all built-in instrumentation.
  obs::Counter instants_counter_;
  obs::Counter segments_counter_;
  obs::Counter snapshots_counter_;
  obs::Counter evictions_counter_;
  obs::Counter compactions_counter_;
  obs::Counter nodes_reclaimed_counter_;
};

}  // namespace ppm::stream

#endif  // PPM_STREAM_CONTINUOUS_MINER_H_
