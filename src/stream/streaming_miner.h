#ifndef PPM_STREAM_STREAMING_MINER_H_
#define PPM_STREAM_STREAMING_MINER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/f1_scan.h"
#include "core/letter_space.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::stream {

class ContinuousMiner;

/// The complete serializable state of a `StreamingMiner`, in a plain,
/// deterministic form (sorted vectors, no hashing order): what a checkpoint
/// persists and what `StreamingMiner::Restore` validates and reloads.
/// Produced by `ExportState`; the codec lives in `stream/checkpoint.h`.
/// `ContinuousMinerState` (stream/continuous_miner.h) embeds this as its
/// window-less core.
struct StreamingMinerState {
  uint32_t drift_window = 0;
  /// The seeded letter space, canonically sorted.
  std::vector<Letter> letters;
  /// Exact per-letter counts, indexed like `letters`.
  std::vector<uint64_t> seeded_counts;
  /// Unseeded (position, feature) counts over the drift horizon: per
  /// position, sorted by feature id.
  std::vector<std::vector<std::pair<tsdb::FeatureId, uint64_t>>> other_counts;
  /// Unseeded letters of the last committed segments (finite window only).
  std::vector<std::vector<Letter>> window_history;
  /// Unseeded letters of the in-flight segment.
  std::vector<Letter> pending_other;
  /// Set letter indices of the in-flight segment mask, ascending.
  std::vector<uint32_t> segment_mask;
  uint32_t segment_position = 0;
  uint64_t instants_seen = 0;
  uint64_t segments_committed = 0;
  /// The hit multiset: (sorted letter indices of the mask, count), sorted
  /// by mask for byte-identical re-serialization.
  std::vector<std::pair<std::vector<uint32_t>, uint64_t>> hits;
};

/// Incremental partial periodic pattern mining over an append-only series.
///
/// The max-subpattern hit-set method is naturally one-pass once the
/// candidate max-pattern `C_max` is fixed: every arriving period segment
/// contributes one hit mask. This class exploits that for monitoring
/// workloads: seed the letter space from a prefix of the stream (or an
/// explicit letter list), then `Append` instants forever; `Snapshot`
/// derives the current frequent patterns at any moment without ever
/// re-reading history.
///
/// The trade-off is explicit: letters outside the seeded space are not
/// tracked as pattern letters (their combinations cannot be recovered
/// without a rescan). The miner *does* keep exact per-letter counts for
/// every (position, feature) it sees, so it can detect when an unseeded
/// letter crosses the frequency threshold -- `DriftedLetters` reports them,
/// signalling that a reseed (one full rescan via `MineHitSet`) is due.
///
/// This is the whole-history facade over `ContinuousMiner` (the engine
/// generalized out of this class): it delegates every operation to a
/// continuous miner with no pattern window, keeping the original API and
/// state format for callers that never evict.
class StreamingMiner {
 public:
  /// Creates a miner for patterns of `options.period`, tracking exactly
  /// `seed_letters` as pattern letters (sorted/deduplicated internally).
  /// `options` must validate with a nonzero period.
  ///
  /// `drift_window` controls `DriftedLetters`: 0 evaluates unseeded letters
  /// over the whole stream (consistent with what a batch `F_1` scan would
  /// find); a positive value evaluates them over the last `drift_window`
  /// committed segments, which notices *newly appearing* periodic behaviour
  /// promptly instead of waiting for it to dominate all of history. While
  /// fewer than `drift_window` segments have been committed, the window
  /// degenerates to the whole stream so far: the drift horizon is
  /// `min(segments_committed, drift_window)` and the frequency threshold is
  /// taken over that shorter horizon (an unseeded letter firing in every
  /// early segment is reported immediately, not after `drift_window`
  /// segments of warm-up).
  static Result<std::unique_ptr<StreamingMiner>> Create(
      const MiningOptions& options, std::vector<Letter> seed_letters,
      uint32_t drift_window = 0);

  /// Convenience: seeds the letter space with the frequent 1-patterns of
  /// `prefix` (mined with `options`), then replays the prefix into the
  /// miner so its state covers the prefix too.
  static Result<std::unique_ptr<StreamingMiner>> SeedFromPrefix(
      const MiningOptions& options, const tsdb::TimeSeries& prefix,
      uint32_t drift_window = 0);

  /// Rebuilds a miner from a previously exported state. `options` supplies
  /// the runtime configuration (thresholds, hit store, cancellation); the
  /// state supplies everything accumulated. Every structural invariant of
  /// the state is re-validated (counts vs. committed segments, canonical
  /// letter order, window consistency, hit-mask bounds); any violation is
  /// `kCorruption` -- a restored miner is either exactly equivalent to the
  /// one that exported the state, or an error, never silently wrong.
  static Result<std::unique_ptr<StreamingMiner>> Restore(
      const MiningOptions& options, const StreamingMinerState& state);

  ~StreamingMiner();

  /// Snapshot of the full miner state for checkpointing. Deterministic:
  /// equal miners export byte-identical states.
  StreamingMinerState ExportState() const;

  /// Feeds the next instant. Whole segments are committed as their last
  /// instant arrives; a trailing partial segment is held back and excluded
  /// from counts until completed.
  void Append(const tsdb::FeatureSet& instant);

  /// Instants consumed so far.
  uint64_t instants_seen() const;

  /// Whole segments committed so far (`m`).
  uint64_t segments_committed() const;

  /// Derives all currently frequent patterns over the seeded letter space.
  /// Cost is independent of the stream length (it touches only the hit
  /// store). The result's stats report hit-store sizes; `scans` is 0.
  MiningResult Snapshot() const;

  /// Unseeded letters whose exact count meets the frequency threshold over
  /// the drift horizon (whole stream, or the last `drift_window` segments):
  /// non-empty means the seeded space is stale and pattern results may be
  /// missing combinations involving these letters.
  std::vector<Letter> DriftedLetters() const;

  const LetterSpace& space() const;

  const MiningOptions& options() const;

  uint32_t drift_window() const;

 private:
  explicit StreamingMiner(std::unique_ptr<ContinuousMiner> impl);

  std::unique_ptr<ContinuousMiner> impl_;
};

}  // namespace ppm::stream

#endif  // PPM_STREAM_STREAMING_MINER_H_
