#include "stream/streaming_miner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "core/derivation.h"
#include "obs/trace.h"
#include "tsdb/series_source.h"
#include "util/check.h"

namespace ppm::stream {

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::Create(
    const MiningOptions& options, std::vector<Letter> seed_letters,
    uint32_t drift_window) {
  // Period-vs-length is meaningless for an unbounded stream; validate the
  // thresholds only.
  PPM_RETURN_IF_ERROR(
      options.Validate(std::numeric_limits<uint64_t>::max()));
  for (const Letter& letter : seed_letters) {
    if (letter.position >= options.period) {
      return Status::InvalidArgument("seed letter position beyond period");
    }
  }
  std::sort(seed_letters.begin(), seed_letters.end());
  seed_letters.erase(std::unique(seed_letters.begin(), seed_letters.end()),
                     seed_letters.end());
  LetterSpace space(options.period, std::move(seed_letters));
  return std::unique_ptr<StreamingMiner>(
      new StreamingMiner(options, std::move(space), drift_window));
}

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::SeedFromPrefix(
    const MiningOptions& options, const tsdb::TimeSeries& prefix,
    uint32_t drift_window) {
  tsdb::InMemorySeriesSource source(&prefix);
  PPM_ASSIGN_OR_RETURN(const F1ScanResult f1, ScanForF1(source, options));
  PPM_ASSIGN_OR_RETURN(std::unique_ptr<StreamingMiner> miner,
                       Create(options, f1.space.letters(), drift_window));
  for (const tsdb::FeatureSet& instant : prefix.instants()) {
    miner->Append(instant);
  }
  return miner;
}

StreamingMinerState StreamingMiner::ExportState() const {
  StreamingMinerState state;
  state.drift_window = drift_window_;
  state.letters = space_.letters();
  state.seeded_counts = seeded_counts_;
  state.other_counts.resize(options_.period);
  for (uint32_t position = 0; position < options_.period; ++position) {
    auto& row = state.other_counts[position];
    row.assign(other_counts_[position].begin(), other_counts_[position].end());
    std::sort(row.begin(), row.end());
  }
  state.window_history.assign(window_history_.begin(), window_history_.end());
  state.pending_other = pending_other_;
  state.segment_mask = segment_mask_.ToVector();
  state.segment_position = segment_position_;
  state.instants_seen = instants_seen_;
  state.segments_committed = segments_committed_;
  store_->ForEachHit([&state](const Bitset& mask, uint64_t count) {
    state.hits.emplace_back(mask.ToVector(), count);
  });
  std::sort(state.hits.begin(), state.hits.end());
  return state;
}

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::Restore(
    const MiningOptions& options, const StreamingMinerState& state) {
  // `Create` re-validates the letters; a rejection here means the state
  // bytes are bad, not that the caller misconfigured anything.
  auto created = Create(options, state.letters, state.drift_window);
  if (!created.ok()) {
    return Status::Corruption("checkpoint state rejected: " +
                              created.status().ToString());
  }
  std::unique_ptr<StreamingMiner> miner = std::move(*created);
  const LetterSpace& space = miner->space_;
  const uint32_t period = options.period;
  const auto corrupt = [](const std::string& what) {
    return Status::Corruption("checkpoint state invalid: " + what);
  };
  if (space.letters() != state.letters) {
    return corrupt("letters not in canonical order");
  }
  if (state.seeded_counts.size() != space.size()) {
    return corrupt("seeded count size mismatch");
  }
  if (state.other_counts.size() != period) {
    return corrupt("other-count position count mismatch");
  }
  if (state.segment_position >= period) {
    return corrupt("segment position beyond period");
  }
  if (state.segments_committed >
      (std::numeric_limits<uint64_t>::max() - state.segment_position) /
          period) {
    return corrupt("segment count overflow");
  }
  if (state.segments_committed * period + state.segment_position !=
      state.instants_seen) {
    return corrupt("instant/segment accounting mismatch");
  }
  for (const uint64_t count : state.seeded_counts) {
    if (count > state.segments_committed) {
      return corrupt("seeded count exceeds committed segments");
    }
  }
  const uint64_t horizon =
      state.drift_window > 0
          ? std::min<uint64_t>(state.segments_committed, state.drift_window)
          : state.segments_committed;
  for (uint32_t position = 0; position < period; ++position) {
    const auto& row = state.other_counts[position];
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0 && row[i].first <= row[i - 1].first) {
        return corrupt("other counts not sorted by feature");
      }
      if (row[i].second == 0) return corrupt("zero other count");
      if (row[i].second > horizon) {
        return corrupt("other count exceeds drift horizon");
      }
      if (space.IndexOf(position, row[i].first) != Bitset::kNoBit) {
        return corrupt("seeded letter in other counts");
      }
    }
  }
  if (state.drift_window == 0) {
    if (!state.window_history.empty()) {
      return corrupt("window history without a drift window");
    }
  } else {
    if (state.window_history.size() !=
        std::min<uint64_t>(state.drift_window, state.segments_committed)) {
      return corrupt("window history size mismatch");
    }
    // The windowed other-counts must be exactly the sum of the history.
    std::vector<std::map<tsdb::FeatureId, uint64_t>> recomputed(period);
    for (const std::vector<Letter>& segment : state.window_history) {
      for (const Letter& letter : segment) {
        if (letter.position >= period) {
          return corrupt("window history position beyond period");
        }
        if (space.IndexOf(letter.position, letter.feature) != Bitset::kNoBit) {
          return corrupt("seeded letter in window history");
        }
        ++recomputed[letter.position][letter.feature];
      }
    }
    for (uint32_t position = 0; position < period; ++position) {
      const auto& row = state.other_counts[position];
      if (recomputed[position].size() != row.size()) {
        return corrupt("window history disagrees with other counts");
      }
      for (const auto& [feature, count] : row) {
        const auto it = recomputed[position].find(feature);
        if (it == recomputed[position].end() || it->second != count) {
          return corrupt("window history disagrees with other counts");
        }
      }
    }
  }
  for (const Letter& letter : state.pending_other) {
    if (letter.position >= state.segment_position) {
      return corrupt("pending letter at an unseen position");
    }
    if (space.IndexOf(letter.position, letter.feature) != Bitset::kNoBit) {
      return corrupt("seeded letter in pending set");
    }
  }
  for (size_t i = 0; i < state.segment_mask.size(); ++i) {
    const uint32_t index = state.segment_mask[i];
    if (i > 0 && index <= state.segment_mask[i - 1]) {
      return corrupt("segment mask not sorted");
    }
    if (index >= space.size()) return corrupt("segment mask index out of range");
    if (space.letter(index).position >= state.segment_position) {
      return corrupt("segment mask letter at an unseen position");
    }
  }
  uint64_t total_hits = 0;
  for (const auto& [mask_bits, count] : state.hits) {
    if (count == 0) return corrupt("zero hit count");
    if (mask_bits.size() < 2) return corrupt("hit mask below two letters");
    for (size_t i = 0; i < mask_bits.size(); ++i) {
      if (i > 0 && mask_bits[i] <= mask_bits[i - 1]) {
        return corrupt("hit mask not sorted");
      }
      if (mask_bits[i] >= space.size()) {
        return corrupt("hit mask index out of range");
      }
    }
    if (count > state.segments_committed - total_hits) {
      return corrupt("hit counts exceed committed segments");
    }
    total_hits += count;
  }

  miner->seeded_counts_ = state.seeded_counts;
  for (uint32_t position = 0; position < period; ++position) {
    for (const auto& [feature, count] : state.other_counts[position]) {
      miner->other_counts_[position][feature] = count;
    }
  }
  miner->window_history_.assign(state.window_history.begin(),
                                state.window_history.end());
  miner->pending_other_ = state.pending_other;
  for (const uint32_t index : state.segment_mask) {
    miner->segment_mask_.Set(index);
  }
  miner->segment_position_ = state.segment_position;
  miner->instants_seen_ = state.instants_seen;
  miner->segments_committed_ = state.segments_committed;
  for (const auto& [mask_bits, count] : state.hits) {
    Bitset mask(space.size());
    for (const uint32_t index : mask_bits) mask.Set(index);
    miner->store_->AddHits(mask, count);
  }
  return miner;
}

StreamingMiner::StreamingMiner(const MiningOptions& options, LetterSpace space,
                               uint32_t drift_window)
    : options_(options),
      space_(std::move(space)),
      drift_window_(drift_window),
      store_(MakeHitStore(options.hit_store, space_.full_mask(),
                          space_.size())),
      seeded_counts_(space_.size(), 0),
      other_counts_(options.period),
      segment_mask_(space_.size()),
      instants_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.stream.instants")),
      segments_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.stream.segments_committed")),
      snapshots_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.stream.snapshots")) {}

void StreamingMiner::Append(const tsdb::FeatureSet& instant) {
  ++instants_seen_;
  instants_counter_.Inc();
  const uint32_t position = segment_position_;

  // Seeded letters accumulate into the in-flight segment mask; everything
  // else is tallied for drift detection. Counts commit with the segment so
  // a trailing partial segment never skews confidences.
  space_.AccumulatePosition(position, instant, &segment_mask_);
  instant.ForEach([this, position](uint32_t feature) {
    if (space_.IndexOf(position, feature) == Bitset::kNoBit) {
      pending_other_.push_back(Letter{position, feature});
    }
  });

  if (++segment_position_ == options_.period) CommitSegment();
}

void StreamingMiner::CommitSegment() {
  segment_mask_.ForEach(
      [this](uint32_t letter) { ++seeded_counts_[letter]; });
  if (segment_mask_.Count() >= 2) store_->AddHit(segment_mask_);
  for (const Letter& letter : pending_other_) {
    ++other_counts_[letter.position][letter.feature];
  }
  if (drift_window_ > 0) {
    window_history_.push_back(pending_other_);
    if (window_history_.size() > drift_window_) {
      // Expire the oldest segment's contribution to the window counts.
      for (const Letter& letter : window_history_.front()) {
        auto& counts = other_counts_[letter.position];
        const auto it = counts.find(letter.feature);
        if (it != counts.end() && --it->second == 0) counts.erase(it);
      }
      window_history_.pop_front();
    }
  }
  ++segments_committed_;
  segments_counter_.Inc();
  segment_mask_.Reset();
  pending_other_.clear();
  segment_position_ = 0;
}

MiningResult StreamingMiner::Snapshot() const {
  obs::TraceSpan span = obs::Tracer::Global().StartSpan("stream.snapshot");
  snapshots_counter_.Inc();
  MiningResult result;
  result.stats().num_periods = segments_committed_;
  if (segments_committed_ == 0) return result;

  F1ScanResult f1;
  f1.num_periods = segments_committed_;
  f1.min_count = options_.EffectiveMinCount(segments_committed_);
  f1.space = space_;
  f1.letter_counts = seeded_counts_;

  // A snapshot honors the run's interrupt: when it fires mid-derivation the
  // snapshot simply carries the levels finished so far (each individually
  // correct), since `Snapshot` has no error channel.
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, options_.max_letters,
      [this](const Bitset& mask) { return store_->CountSuperpatterns(mask); },
      &result, nullptr, options_.interrupt());
  result.Canonicalize();
  result.stats().num_f1_letters = space_.size();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store_->num_entries();
  result.stats().tree_nodes =
      options_.hit_store == HitStoreKind::kMaxSubpatternTree
          ? store_->num_units()
          : 0;
  obs::MetricsRegistry::Global()
      .GetGauge("ppm.resource.hit_store_bytes")
      .Set(store_->ApproxMemoryBytes());
  span.End();
  result.stats().elapsed_seconds = span.ElapsedSeconds();
  return result;
}

std::vector<Letter> StreamingMiner::DriftedLetters() const {
  std::vector<Letter> drifted;
  if (segments_committed_ == 0) return drifted;
  const uint64_t horizon =
      drift_window_ > 0
          ? std::min<uint64_t>(segments_committed_, drift_window_)
          : segments_committed_;
  const uint64_t min_count = options_.EffectiveMinCount(horizon);
  for (uint32_t position = 0; position < options_.period; ++position) {
    for (const auto& [feature, count] : other_counts_[position]) {
      if (count >= min_count) drifted.push_back(Letter{position, feature});
    }
  }
  return drifted;
}

}  // namespace ppm::stream
