#include "stream/streaming_miner.h"

#include <utility>

#include "stream/continuous_miner.h"

namespace ppm::stream {

namespace {

/// All StreamingMiner entry points funnel into the continuous engine with
/// no pattern window: the whole-history behaviour this class has always
/// had is the window_segments == 0 case of `ContinuousMiner`.
ContinuousOptions WholeHistory(uint32_t drift_window) {
  ContinuousOptions continuous;
  continuous.drift_window = drift_window;
  return continuous;
}

}  // namespace

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::Create(
    const MiningOptions& options, std::vector<Letter> seed_letters,
    uint32_t drift_window) {
  PPM_ASSIGN_OR_RETURN(
      std::unique_ptr<ContinuousMiner> impl,
      ContinuousMiner::Create(options, std::move(seed_letters),
                              WholeHistory(drift_window)));
  return std::unique_ptr<StreamingMiner>(new StreamingMiner(std::move(impl)));
}

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::SeedFromPrefix(
    const MiningOptions& options, const tsdb::TimeSeries& prefix,
    uint32_t drift_window) {
  PPM_ASSIGN_OR_RETURN(std::unique_ptr<ContinuousMiner> impl,
                       ContinuousMiner::SeedFromPrefix(
                           options, prefix, WholeHistory(drift_window)));
  return std::unique_ptr<StreamingMiner>(new StreamingMiner(std::move(impl)));
}

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::Restore(
    const MiningOptions& options, const StreamingMinerState& state) {
  ContinuousMinerState full_state;
  full_state.core = state;
  PPM_ASSIGN_OR_RETURN(std::unique_ptr<ContinuousMiner> impl,
                       ContinuousMiner::Restore(options, full_state));
  return std::unique_ptr<StreamingMiner>(new StreamingMiner(std::move(impl)));
}

StreamingMiner::StreamingMiner(std::unique_ptr<ContinuousMiner> impl)
    : impl_(std::move(impl)) {}

StreamingMiner::~StreamingMiner() = default;

StreamingMinerState StreamingMiner::ExportState() const {
  return std::move(impl_->ExportState().core);
}

void StreamingMiner::Append(const tsdb::FeatureSet& instant) {
  impl_->Append(instant);
}

uint64_t StreamingMiner::instants_seen() const {
  return impl_->instants_seen();
}

uint64_t StreamingMiner::segments_committed() const {
  return impl_->segments_committed();
}

MiningResult StreamingMiner::Snapshot() const { return impl_->Snapshot(); }

std::vector<Letter> StreamingMiner::DriftedLetters() const {
  return impl_->DriftedLetters();
}

const LetterSpace& StreamingMiner::space() const { return impl_->space(); }

const MiningOptions& StreamingMiner::options() const {
  return impl_->options();
}

uint32_t StreamingMiner::drift_window() const { return impl_->drift_window(); }

}  // namespace ppm::stream
