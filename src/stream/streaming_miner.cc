#include "stream/streaming_miner.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/derivation.h"
#include "obs/trace.h"
#include "tsdb/series_source.h"
#include "util/check.h"

namespace ppm::stream {

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::Create(
    const MiningOptions& options, std::vector<Letter> seed_letters,
    uint32_t drift_window) {
  // Period-vs-length is meaningless for an unbounded stream; validate the
  // thresholds only.
  PPM_RETURN_IF_ERROR(
      options.Validate(std::numeric_limits<uint64_t>::max()));
  for (const Letter& letter : seed_letters) {
    if (letter.position >= options.period) {
      return Status::InvalidArgument("seed letter position beyond period");
    }
  }
  std::sort(seed_letters.begin(), seed_letters.end());
  seed_letters.erase(std::unique(seed_letters.begin(), seed_letters.end()),
                     seed_letters.end());
  LetterSpace space(options.period, std::move(seed_letters));
  return std::unique_ptr<StreamingMiner>(
      new StreamingMiner(options, std::move(space), drift_window));
}

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::SeedFromPrefix(
    const MiningOptions& options, const tsdb::TimeSeries& prefix,
    uint32_t drift_window) {
  tsdb::InMemorySeriesSource source(&prefix);
  PPM_ASSIGN_OR_RETURN(const F1ScanResult f1, ScanForF1(source, options));
  PPM_ASSIGN_OR_RETURN(std::unique_ptr<StreamingMiner> miner,
                       Create(options, f1.space.letters(), drift_window));
  for (const tsdb::FeatureSet& instant : prefix.instants()) {
    miner->Append(instant);
  }
  return miner;
}

StreamingMiner::StreamingMiner(const MiningOptions& options, LetterSpace space,
                               uint32_t drift_window)
    : options_(options),
      space_(std::move(space)),
      drift_window_(drift_window),
      store_(MakeHitStore(options.hit_store, space_.full_mask(),
                          space_.size())),
      seeded_counts_(space_.size(), 0),
      other_counts_(options.period),
      segment_mask_(space_.size()),
      instants_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.stream.instants")),
      segments_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.stream.segments_committed")),
      snapshots_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.stream.snapshots")) {}

void StreamingMiner::Append(const tsdb::FeatureSet& instant) {
  ++instants_seen_;
  instants_counter_.Inc();
  const uint32_t position = segment_position_;

  // Seeded letters accumulate into the in-flight segment mask; everything
  // else is tallied for drift detection. Counts commit with the segment so
  // a trailing partial segment never skews confidences.
  space_.AccumulatePosition(position, instant, &segment_mask_);
  instant.ForEach([this, position](uint32_t feature) {
    if (space_.IndexOf(position, feature) == Bitset::kNoBit) {
      pending_other_.push_back(Letter{position, feature});
    }
  });

  if (++segment_position_ == options_.period) CommitSegment();
}

void StreamingMiner::CommitSegment() {
  segment_mask_.ForEach(
      [this](uint32_t letter) { ++seeded_counts_[letter]; });
  if (segment_mask_.Count() >= 2) store_->AddHit(segment_mask_);
  for (const Letter& letter : pending_other_) {
    ++other_counts_[letter.position][letter.feature];
  }
  if (drift_window_ > 0) {
    window_history_.push_back(pending_other_);
    if (window_history_.size() > drift_window_) {
      // Expire the oldest segment's contribution to the window counts.
      for (const Letter& letter : window_history_.front()) {
        auto& counts = other_counts_[letter.position];
        const auto it = counts.find(letter.feature);
        if (it != counts.end() && --it->second == 0) counts.erase(it);
      }
      window_history_.pop_front();
    }
  }
  ++segments_committed_;
  segments_counter_.Inc();
  segment_mask_.Reset();
  pending_other_.clear();
  segment_position_ = 0;
}

MiningResult StreamingMiner::Snapshot() const {
  obs::TraceSpan span = obs::Tracer::Global().StartSpan("stream.snapshot");
  snapshots_counter_.Inc();
  MiningResult result;
  result.stats().num_periods = segments_committed_;
  if (segments_committed_ == 0) return result;

  F1ScanResult f1;
  f1.num_periods = segments_committed_;
  f1.min_count = options_.EffectiveMinCount(segments_committed_);
  f1.space = space_;
  f1.letter_counts = seeded_counts_;

  // A snapshot honors the run's interrupt: when it fires mid-derivation the
  // snapshot simply carries the levels finished so far (each individually
  // correct), since `Snapshot` has no error channel.
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, options_.max_letters,
      [this](const Bitset& mask) { return store_->CountSuperpatterns(mask); },
      &result, nullptr, options_.interrupt());
  result.Canonicalize();
  result.stats().num_f1_letters = space_.size();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store_->num_entries();
  result.stats().tree_nodes =
      options_.hit_store == HitStoreKind::kMaxSubpatternTree
          ? store_->num_units()
          : 0;
  span.End();
  result.stats().elapsed_seconds = span.ElapsedSeconds();
  return result;
}

std::vector<Letter> StreamingMiner::DriftedLetters() const {
  std::vector<Letter> drifted;
  if (segments_committed_ == 0) return drifted;
  const uint64_t horizon =
      drift_window_ > 0
          ? std::min<uint64_t>(segments_committed_, drift_window_)
          : segments_committed_;
  const uint64_t min_count = options_.EffectiveMinCount(horizon);
  for (uint32_t position = 0; position < options_.period; ++position) {
    for (const auto& [feature, count] : other_counts_[position]) {
      if (count >= min_count) drifted.push_back(Letter{position, feature});
    }
  }
  return drifted;
}

}  // namespace ppm::stream
