#include "stream/checkpoint.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "tsdb/fault_injection.h"
#include "util/crc32c.h"
#include "util/fs.h"

namespace ppm::stream {

namespace fs = std::filesystem;

namespace {

/// Caps on decoded collection sizes, checked before any allocation.
constexpr uint32_t kMaxSymbols = 1u << 24;
constexpr uint32_t kMaxSymbolNameBytes = 1u << 20;
constexpr uint32_t kMaxLetters = 1u << 24;

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked sequential reader over the state block. Every failed
/// read is reported by the caller as `kCorruption`.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* value) {
    if (size_ - pos_ < 4) return false;
    *value = 0;
    for (int i = 0; i < 4; ++i) {
      *value |= static_cast<uint32_t>(
                    static_cast<unsigned char>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* value) {
    if (size_ - pos_ < 8) return false;
    *value = 0;
    for (int i = 0; i < 8; ++i) {
      *value |= static_cast<uint64_t>(
                    static_cast<unsigned char>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadBytes(std::string* out, size_t n) {
    if (size_ - pos_ < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string EncodeState(const CheckpointData& data) {
  const StreamingMinerState& state = data.state.core;
  std::string out;
  AppendU32(&out, kCheckpointVersion);
  AppendU32(&out, data.period);
  uint64_t conf_bits = 0;
  static_assert(sizeof(conf_bits) == sizeof(data.min_confidence));
  std::memcpy(&conf_bits, &data.min_confidence, sizeof(conf_bits));
  AppendU64(&out, conf_bits);
  AppendU64(&out, data.min_count);
  AppendU32(&out, data.max_letters);
  AppendU32(&out, static_cast<uint32_t>(data.hit_store));
  AppendU32(&out, state.drift_window);
  AppendU32(&out, data.state.window_segments);  // v2
  AppendU64(&out, state.instants_seen);
  AppendU64(&out, state.segments_committed);
  AppendU32(&out, static_cast<uint32_t>(data.symbols.size()));
  for (const std::string& name : data.symbols) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out += name;
  }
  AppendU32(&out, static_cast<uint32_t>(state.letters.size()));
  for (const Letter& letter : state.letters) {
    AppendU32(&out, letter.position);
    AppendU32(&out, letter.feature);
  }
  for (const uint64_t count : state.seeded_counts) AppendU64(&out, count);
  for (const auto& row : state.other_counts) {
    AppendU32(&out, static_cast<uint32_t>(row.size()));
    for (const auto& [feature, count] : row) {
      AppendU32(&out, feature);
      AppendU64(&out, count);
    }
  }
  AppendU32(&out, static_cast<uint32_t>(state.window_history.size()));
  for (const std::vector<Letter>& segment : state.window_history) {
    AppendU32(&out, static_cast<uint32_t>(segment.size()));
    for (const Letter& letter : segment) {
      AppendU32(&out, letter.position);
      AppendU32(&out, letter.feature);
    }
  }
  AppendU32(&out, state.segment_position);
  AppendU32(&out, static_cast<uint32_t>(state.segment_mask.size()));
  for (const uint32_t index : state.segment_mask) AppendU32(&out, index);
  AppendU32(&out, static_cast<uint32_t>(state.pending_other.size()));
  for (const Letter& letter : state.pending_other) {
    AppendU32(&out, letter.position);
    AppendU32(&out, letter.feature);
  }
  // v2: the retained window masks, oldest first, right before the hits so
  // a decoder can cross-check both against each other.
  AppendU32(&out, static_cast<uint32_t>(data.state.window_masks.size()));
  for (const std::vector<uint32_t>& mask : data.state.window_masks) {
    AppendU32(&out, static_cast<uint32_t>(mask.size()));
    for (const uint32_t index : mask) AppendU32(&out, index);
  }
  AppendU64(&out, static_cast<uint64_t>(state.hits.size()));
  for (const auto& [mask_bits, count] : state.hits) {
    AppendU32(&out, static_cast<uint32_t>(mask_bits.size()));
    for (const uint32_t index : mask_bits) AppendU32(&out, index);
    AppendU64(&out, count);
  }
  return out;
}

Result<CheckpointData> DecodeState(const std::string& block) {
  const auto corrupt = [](const std::string& what) {
    return Status::Corruption("checkpoint: " + what);
  };
  Cursor cursor(block.data(), block.size());
  CheckpointData data;
  uint32_t version = 0;
  if (!cursor.ReadU32(&version)) return corrupt("truncated version");
  // Version 1 predates the sliding window: identical layout minus the
  // `window_segments` field and the window-mask array, and decodes as
  // whole-history state.
  if (version != 1 && version != kCheckpointVersion) {
    return corrupt("unsupported version " + std::to_string(version));
  }
  uint64_t conf_bits = 0;
  uint32_t hit_store = 0;
  if (!cursor.ReadU32(&data.period) || !cursor.ReadU64(&conf_bits) ||
      !cursor.ReadU64(&data.min_count) || !cursor.ReadU32(&data.max_letters) ||
      !cursor.ReadU32(&hit_store)) {
    return corrupt("truncated configuration");
  }
  std::memcpy(&data.min_confidence, &conf_bits, sizeof(data.min_confidence));
  if (!std::isfinite(data.min_confidence)) {
    return corrupt("non-finite confidence threshold");
  }
  if (hit_store > 1) return corrupt("unknown hit store kind");
  data.hit_store = static_cast<HitStoreKind>(hit_store);

  StreamingMinerState& state = data.state.core;
  if (!cursor.ReadU32(&state.drift_window)) {
    return corrupt("truncated cursor state");
  }
  if (version >= 2 && !cursor.ReadU32(&data.state.window_segments)) {
    return corrupt("truncated window size");
  }
  if (!cursor.ReadU64(&state.instants_seen) ||
      !cursor.ReadU64(&state.segments_committed)) {
    return corrupt("truncated cursor state");
  }

  uint32_t num_symbols = 0;
  if (!cursor.ReadU32(&num_symbols)) return corrupt("truncated symbol count");
  if (num_symbols > kMaxSymbols) return corrupt("implausible symbol count");
  data.symbols.reserve(std::min<size_t>(num_symbols, cursor.remaining() / 4));
  for (uint32_t i = 0; i < num_symbols; ++i) {
    uint32_t name_len = 0;
    if (!cursor.ReadU32(&name_len)) return corrupt("truncated symbol length");
    if (name_len > kMaxSymbolNameBytes) {
      return corrupt("implausible symbol length");
    }
    std::string name;
    if (!cursor.ReadBytes(&name, name_len)) return corrupt("truncated symbol");
    data.symbols.push_back(std::move(name));
  }

  uint32_t num_letters = 0;
  if (!cursor.ReadU32(&num_letters)) return corrupt("truncated letter count");
  if (num_letters > kMaxLetters) return corrupt("implausible letter count");
  if (cursor.remaining() / 8 < num_letters) {
    return corrupt("truncated letters");
  }
  state.letters.reserve(num_letters);
  for (uint32_t i = 0; i < num_letters; ++i) {
    Letter letter;
    cursor.ReadU32(&letter.position);
    cursor.ReadU32(&letter.feature);
    state.letters.push_back(letter);
  }
  if (cursor.remaining() / 8 < num_letters) {
    return corrupt("truncated seeded counts");
  }
  state.seeded_counts.resize(num_letters);
  for (uint32_t i = 0; i < num_letters; ++i) {
    cursor.ReadU64(&state.seeded_counts[i]);
  }

  if (data.period > kMaxLetters) return corrupt("implausible period");
  state.other_counts.resize(data.period);
  for (uint32_t position = 0; position < data.period; ++position) {
    uint32_t row_size = 0;
    if (!cursor.ReadU32(&row_size)) return corrupt("truncated other counts");
    if (cursor.remaining() / 12 < row_size) {
      return corrupt("truncated other counts");
    }
    auto& row = state.other_counts[position];
    row.reserve(row_size);
    for (uint32_t i = 0; i < row_size; ++i) {
      uint32_t feature = 0;
      uint64_t count = 0;
      cursor.ReadU32(&feature);
      cursor.ReadU64(&count);
      row.emplace_back(feature, count);
    }
  }

  uint32_t history_size = 0;
  if (!cursor.ReadU32(&history_size)) return corrupt("truncated history count");
  if (cursor.remaining() / 4 < history_size) {
    return corrupt("implausible history count");
  }
  state.window_history.resize(history_size);
  for (uint32_t h = 0; h < history_size; ++h) {
    uint32_t segment_size = 0;
    if (!cursor.ReadU32(&segment_size)) return corrupt("truncated history");
    if (cursor.remaining() / 8 < segment_size) {
      return corrupt("truncated history segment");
    }
    auto& segment = state.window_history[h];
    segment.reserve(segment_size);
    for (uint32_t i = 0; i < segment_size; ++i) {
      Letter letter;
      cursor.ReadU32(&letter.position);
      cursor.ReadU32(&letter.feature);
      segment.push_back(letter);
    }
  }

  if (!cursor.ReadU32(&state.segment_position)) {
    return corrupt("truncated segment position");
  }
  uint32_t mask_size = 0;
  if (!cursor.ReadU32(&mask_size)) return corrupt("truncated mask count");
  if (cursor.remaining() / 4 < mask_size) return corrupt("truncated mask");
  state.segment_mask.reserve(mask_size);
  for (uint32_t i = 0; i < mask_size; ++i) {
    uint32_t index = 0;
    cursor.ReadU32(&index);
    state.segment_mask.push_back(index);
  }
  uint32_t pending_size = 0;
  if (!cursor.ReadU32(&pending_size)) return corrupt("truncated pending count");
  if (cursor.remaining() / 8 < pending_size) {
    return corrupt("truncated pending letters");
  }
  state.pending_other.reserve(pending_size);
  for (uint32_t i = 0; i < pending_size; ++i) {
    Letter letter;
    cursor.ReadU32(&letter.position);
    cursor.ReadU32(&letter.feature);
    state.pending_other.push_back(letter);
  }

  if (version >= 2) {
    uint32_t num_masks = 0;
    if (!cursor.ReadU32(&num_masks)) {
      return corrupt("truncated window mask count");
    }
    if (cursor.remaining() / 4 < num_masks) {
      return corrupt("implausible window mask count");
    }
    data.state.window_masks.resize(num_masks);
    for (uint32_t w = 0; w < num_masks; ++w) {
      uint32_t bits = 0;
      if (!cursor.ReadU32(&bits)) return corrupt("truncated window mask");
      if (cursor.remaining() / 4 < bits) {
        return corrupt("truncated window mask");
      }
      auto& mask = data.state.window_masks[w];
      mask.reserve(bits);
      for (uint32_t i = 0; i < bits; ++i) {
        uint32_t index = 0;
        cursor.ReadU32(&index);
        mask.push_back(index);
      }
    }
  }

  uint64_t num_hits = 0;
  if (!cursor.ReadU64(&num_hits)) return corrupt("truncated hit count");
  if (cursor.remaining() / 12 < num_hits) return corrupt("implausible hit count");
  state.hits.reserve(num_hits);
  for (uint64_t h = 0; h < num_hits; ++h) {
    uint32_t bits = 0;
    if (!cursor.ReadU32(&bits)) return corrupt("truncated hit mask");
    if (cursor.remaining() / 4 < bits) return corrupt("truncated hit mask");
    std::vector<uint32_t> mask_bits;
    mask_bits.reserve(bits);
    for (uint32_t i = 0; i < bits; ++i) {
      uint32_t index = 0;
      cursor.ReadU32(&index);
      mask_bits.push_back(index);
    }
    uint64_t count = 0;
    if (!cursor.ReadU64(&count)) return corrupt("truncated hit count value");
    state.hits.emplace_back(std::move(mask_bits), count);
  }

  if (!cursor.exhausted()) return corrupt("trailing bytes in state block");
  return data;
}

/// Durability hook honoring the fault-injection seam, like the manifest's.
Status SyncPath(const std::string& path) {
  if (tsdb::FaultInjector::Global().FsyncShouldFail()) {
    return Status::IoError("injected fsync failure: " + path);
  }
  return fsutil::FsyncPath(path);
}

Result<std::string> ReadCheckpointBytes(const std::string& path) {
  tsdb::FaultInjector& injector = tsdb::FaultInjector::Global();
  if (injector.ConsumeTransientReadFailure()) {
    return Status::IoError("injected transient read failure: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      return Status::NotFound("no checkpoint at " + path);
    }
    return Status::IoError("cannot open checkpoint: " + path);
  }
  std::unique_ptr<std::streambuf> wrapped = injector.MaybeWrap(in.rdbuf());
  std::istream stream(wrapped != nullptr ? wrapped.get() : in.rdbuf());
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  if (in.bad()) return Status::IoError("checkpoint read failed: " + path);
  return buffer.str();
}

Status WriteCheckpointData(const CheckpointData& data, const std::string& dir) {
  const std::string block = EncodeState(data);
  std::string bytes;
  bytes.reserve(sizeof(kCheckpointMagic) + 12 + block.size());
  bytes.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendU64(&bytes, block.size());
  AppendU32(&bytes, crc32c::Value(block));
  bytes += block;

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  const Status written =
      fsutil::AtomicWriteFile(CheckpointPath(dir), bytes, SyncPath);
  if (!written.ok()) {
    metrics.GetCounter("ppm.stream.checkpoint.failures").Inc();
    return written;
  }
  metrics.GetCounter("ppm.stream.checkpoint.writes").Inc();
  metrics.GetCounter("ppm.stream.checkpoint.bytes").Inc(bytes.size());
  return Status::OK();
}

CheckpointData ConfigOf(const MiningOptions& options,
                        const tsdb::SymbolTable& symbols) {
  CheckpointData data;
  data.period = options.period;
  data.min_confidence = options.min_confidence;
  data.min_count = options.min_count;
  data.max_letters = options.max_letters;
  data.hit_store = options.hit_store;
  data.symbols = symbols.names();
  return data;
}

/// The shared recovery tail: replay every WAL record at or past the
/// checkpoint's instant cursor into `miner`. Works for either miner type
/// (both expose `Append` and `instants_seen`).
template <typename Miner>
Result<tsdb::WalReplayInfo> ReplayWalTail(const std::string& dir,
                                          Miner& miner) {
  const uint64_t checkpoint_instants = miner.instants_seen();
  auto replayed = tsdb::ReplayWal(
      WalPath(dir), checkpoint_instants,
      [&miner](uint64_t, const tsdb::FeatureSet& instant) {
        miner.Append(instant);
        return Status::OK();
      });
  if (!replayed.ok()) {
    if (replayed.status().code() == StatusCode::kNotFound) {
      if (checkpoint_instants > 0) {
        // The protocol syncs the WAL before every checkpoint; a checkpoint
        // with history but no log means the log was lost.
        return Status::Corruption("checkpoint covers " +
                                  std::to_string(checkpoint_instants) +
                                  " instants but the WAL is missing");
      }
      return tsdb::WalReplayInfo{};  // Fresh directory: nothing logged yet.
    }
    return replayed.status();
  }
  if (replayed->next_seq < checkpoint_instants) {
    return Status::Corruption(
        "checkpoint ahead of the durable WAL: checkpoint covers " +
        std::to_string(checkpoint_instants) + " instants, WAL holds " +
        std::to_string(replayed->next_seq));
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("ppm.stream.recovery.wal_records_replayed")
      .Inc(replayed->records_delivered);
  if (replayed->torn_tail) {
    metrics.GetCounter("ppm.stream.recovery.torn_tails").Inc();
  }
  return *replayed;
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.ppmckp";
}

std::string WalPath(const std::string& dir) { return dir + "/wal.ppmwal"; }

Status WriteCheckpoint(const ContinuousMiner& miner,
                       const tsdb::SymbolTable& symbols,
                       const std::string& dir) {
  CheckpointData data = ConfigOf(miner.options(), symbols);
  data.state = miner.ExportState();
  return WriteCheckpointData(data, dir);
}

Status WriteCheckpoint(const StreamingMiner& miner,
                       const tsdb::SymbolTable& symbols,
                       const std::string& dir) {
  CheckpointData data = ConfigOf(miner.options(), symbols);
  data.state.core = miner.ExportState();
  return WriteCheckpointData(data, dir);
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  Result<std::string> read = ReadCheckpointBytes(path);
  if (!read.ok()) return read.status();
  const std::string& bytes = *read;
  if (bytes.size() < sizeof(kCheckpointMagic) + 12) {
    return Status::Corruption("checkpoint too short: " + path);
  }
  if (bytes.compare(0, sizeof(kCheckpointMagic), kCheckpointMagic,
                    sizeof(kCheckpointMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic: " + path);
  }
  Cursor header(bytes.data() + sizeof(kCheckpointMagic), 12);
  uint64_t block_len = 0;
  uint32_t block_crc = 0;
  header.ReadU64(&block_len);
  header.ReadU32(&block_crc);
  const size_t block_offset = sizeof(kCheckpointMagic) + 12;
  if (bytes.size() - block_offset != block_len) {
    return Status::Corruption("checkpoint length mismatch: " + path);
  }
  if (crc32c::Value(bytes.data() + block_offset, block_len) != block_crc) {
    return Status::Corruption("checkpoint checksum mismatch: " + path);
  }
  return DecodeState(bytes.substr(block_offset));
}

Result<std::unique_ptr<ContinuousMiner>> RestoreContinuousMiner(
    const CheckpointData& data, const MiningOptions& runtime,
    uint32_t compact_every) {
  MiningOptions options = runtime;
  options.period = data.period;
  options.min_confidence = data.min_confidence;
  options.min_count = data.min_count;
  options.max_letters = data.max_letters;
  options.hit_store = data.hit_store;
  // The restored miner is a single-threaded consumer; parallel knobs from
  // the runtime options don't apply to streaming appends.
  options.num_threads = 1;
  return ContinuousMiner::Restore(options, data.state, compact_every);
}

Result<std::unique_ptr<StreamingMiner>> RestoreMiner(
    const CheckpointData& data, const MiningOptions& runtime) {
  if (data.state.window_segments != 0) {
    return Status::Corruption(
        "checkpoint carries a pattern window of " +
        std::to_string(data.state.window_segments) +
        " segments; resume it as a continuous stream");
  }
  MiningOptions options = runtime;
  options.period = data.period;
  options.min_confidence = data.min_confidence;
  options.min_count = data.min_count;
  options.max_letters = data.max_letters;
  options.hit_store = data.hit_store;
  options.num_threads = 1;
  return StreamingMiner::Restore(options, data.state.core);
}

Result<RecoveredContinuousStream> RecoverContinuousStream(
    const std::string& dir, const MiningOptions& runtime,
    uint32_t compact_every) {
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.stream.recovery.attempts")
      .Inc();
  PPM_ASSIGN_OR_RETURN(const CheckpointData data,
                       ReadCheckpoint(CheckpointPath(dir)));
  RecoveredContinuousStream recovered;
  recovered.symbols = data.symbols;
  PPM_ASSIGN_OR_RETURN(recovered.miner,
                       RestoreContinuousMiner(data, runtime, compact_every));
  PPM_ASSIGN_OR_RETURN(recovered.wal, ReplayWalTail(dir, *recovered.miner));
  return recovered;
}

Result<RecoveredStream> RecoverStream(const std::string& dir,
                                      const MiningOptions& runtime) {
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.stream.recovery.attempts")
      .Inc();
  PPM_ASSIGN_OR_RETURN(const CheckpointData data,
                       ReadCheckpoint(CheckpointPath(dir)));
  RecoveredStream recovered;
  recovered.symbols = data.symbols;
  PPM_ASSIGN_OR_RETURN(recovered.miner, RestoreMiner(data, runtime));
  PPM_ASSIGN_OR_RETURN(recovered.wal, ReplayWalTail(dir, *recovered.miner));
  return recovered;
}

Status CheckpointStream(const ContinuousMiner& miner, tsdb::WalWriter& wal,
                        const tsdb::SymbolTable& symbols,
                        const std::string& dir) {
  // WAL first: the checkpoint must never claim instants the log could
  // still lose (recovery treats that as corruption).
  PPM_RETURN_IF_ERROR(wal.Sync());
  return WriteCheckpoint(miner, symbols, dir);
}

Status CheckpointStream(const StreamingMiner& miner, tsdb::WalWriter& wal,
                        const tsdb::SymbolTable& symbols,
                        const std::string& dir) {
  PPM_RETURN_IF_ERROR(wal.Sync());
  return WriteCheckpoint(miner, symbols, dir);
}

}  // namespace ppm::stream
