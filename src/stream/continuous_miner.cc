#include "stream/continuous_miner.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "core/derivation.h"
#include "obs/trace.h"
#include "tsdb/series_source.h"
#include "util/check.h"

namespace ppm::stream {

Result<std::unique_ptr<ContinuousMiner>> ContinuousMiner::Create(
    const MiningOptions& options, std::vector<Letter> seed_letters,
    const ContinuousOptions& continuous) {
  // Period-vs-length is meaningless for an unbounded stream; validate the
  // thresholds only.
  PPM_RETURN_IF_ERROR(
      options.Validate(std::numeric_limits<uint64_t>::max()));
  for (const Letter& letter : seed_letters) {
    if (letter.position >= options.period) {
      return Status::InvalidArgument("seed letter position beyond period");
    }
  }
  std::sort(seed_letters.begin(), seed_letters.end());
  seed_letters.erase(std::unique(seed_letters.begin(), seed_letters.end()),
                     seed_letters.end());
  LetterSpace space(options.period, std::move(seed_letters));
  return std::unique_ptr<ContinuousMiner>(
      new ContinuousMiner(options, std::move(space), continuous));
}

Result<std::unique_ptr<ContinuousMiner>> ContinuousMiner::SeedFromPrefix(
    const MiningOptions& options, const tsdb::TimeSeries& prefix,
    const ContinuousOptions& continuous) {
  tsdb::InMemorySeriesSource source(&prefix);
  PPM_ASSIGN_OR_RETURN(const F1ScanResult f1, ScanForF1(source, options));
  PPM_ASSIGN_OR_RETURN(std::unique_ptr<ContinuousMiner> miner,
                       Create(options, f1.space.letters(), continuous));
  for (const tsdb::FeatureSet& instant : prefix.instants()) {
    miner->Append(instant);
  }
  return miner;
}

ContinuousMinerState ContinuousMiner::ExportState() const {
  ContinuousMinerState state;
  StreamingMinerState& core = state.core;
  core.drift_window = drift_window_;
  core.letters = space_.letters();
  core.seeded_counts = seeded_counts_;
  core.other_counts.resize(options_.period);
  for (uint32_t position = 0; position < options_.period; ++position) {
    auto& row = core.other_counts[position];
    row.assign(other_counts_[position].begin(), other_counts_[position].end());
    std::sort(row.begin(), row.end());
  }
  core.window_history.assign(window_history_.begin(), window_history_.end());
  core.pending_other = pending_other_;
  core.segment_mask = segment_mask_.ToVector();
  core.segment_position = segment_position_;
  core.instants_seen = instants_seen_;
  core.segments_committed = segments_committed_;
  store_->ForEachHit([&core](const Bitset& mask, uint64_t count) {
    core.hits.emplace_back(mask.ToVector(), count);
  });
  std::sort(core.hits.begin(), core.hits.end());
  state.window_segments = window_segments_;
  state.window_masks.assign(window_masks_.begin(), window_masks_.end());
  return state;
}

Result<std::unique_ptr<ContinuousMiner>> ContinuousMiner::Restore(
    const MiningOptions& options, const ContinuousMinerState& full_state,
    uint32_t compact_every) {
  const StreamingMinerState& state = full_state.core;
  // `Create` re-validates the letters; a rejection here means the state
  // bytes are bad, not that the caller misconfigured anything.
  ContinuousOptions continuous;
  continuous.drift_window = state.drift_window;
  continuous.window_segments = full_state.window_segments;
  continuous.compact_every = compact_every;
  auto created = Create(options, state.letters, continuous);
  if (!created.ok()) {
    return Status::Corruption("checkpoint state rejected: " +
                              created.status().ToString());
  }
  std::unique_ptr<ContinuousMiner> miner = std::move(*created);
  const LetterSpace& space = miner->space_;
  const uint32_t period = options.period;
  const auto corrupt = [](const std::string& what) {
    return Status::Corruption("checkpoint state invalid: " + what);
  };
  if (space.letters() != state.letters) {
    return corrupt("letters not in canonical order");
  }
  if (state.seeded_counts.size() != space.size()) {
    return corrupt("seeded count size mismatch");
  }
  if (state.other_counts.size() != period) {
    return corrupt("other-count position count mismatch");
  }
  if (state.segment_position >= period) {
    return corrupt("segment position beyond period");
  }
  if (state.segments_committed >
      (std::numeric_limits<uint64_t>::max() - state.segment_position) /
          period) {
    return corrupt("segment count overflow");
  }
  if (state.segments_committed * period + state.segment_position !=
      state.instants_seen) {
    return corrupt("instant/segment accounting mismatch");
  }
  // With a finite window, per-letter counts cover only the retained
  // segments; unbounded, they cover every committed segment.
  const uint64_t pattern_horizon =
      full_state.window_segments > 0
          ? std::min<uint64_t>(state.segments_committed,
                               full_state.window_segments)
          : state.segments_committed;
  for (const uint64_t count : state.seeded_counts) {
    if (count > pattern_horizon) {
      return corrupt("seeded count exceeds committed segments");
    }
  }
  const uint64_t horizon =
      state.drift_window > 0
          ? std::min<uint64_t>(state.segments_committed, state.drift_window)
          : state.segments_committed;
  for (uint32_t position = 0; position < period; ++position) {
    const auto& row = state.other_counts[position];
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0 && row[i].first <= row[i - 1].first) {
        return corrupt("other counts not sorted by feature");
      }
      if (row[i].second == 0) return corrupt("zero other count");
      if (row[i].second > horizon) {
        return corrupt("other count exceeds drift horizon");
      }
      if (space.IndexOf(position, row[i].first) != Bitset::kNoBit) {
        return corrupt("seeded letter in other counts");
      }
    }
  }
  if (state.drift_window == 0) {
    if (!state.window_history.empty()) {
      return corrupt("window history without a drift window");
    }
  } else {
    if (state.window_history.size() !=
        std::min<uint64_t>(state.drift_window, state.segments_committed)) {
      return corrupt("window history size mismatch");
    }
    // The windowed other-counts must be exactly the sum of the history.
    std::vector<std::map<tsdb::FeatureId, uint64_t>> recomputed(period);
    for (const std::vector<Letter>& segment : state.window_history) {
      for (const Letter& letter : segment) {
        if (letter.position >= period) {
          return corrupt("window history position beyond period");
        }
        if (space.IndexOf(letter.position, letter.feature) != Bitset::kNoBit) {
          return corrupt("seeded letter in window history");
        }
        ++recomputed[letter.position][letter.feature];
      }
    }
    for (uint32_t position = 0; position < period; ++position) {
      const auto& row = state.other_counts[position];
      if (recomputed[position].size() != row.size()) {
        return corrupt("window history disagrees with other counts");
      }
      for (const auto& [feature, count] : row) {
        const auto it = recomputed[position].find(feature);
        if (it == recomputed[position].end() || it->second != count) {
          return corrupt("window history disagrees with other counts");
        }
      }
    }
  }
  for (const Letter& letter : state.pending_other) {
    if (letter.position >= state.segment_position) {
      return corrupt("pending letter at an unseen position");
    }
    if (space.IndexOf(letter.position, letter.feature) != Bitset::kNoBit) {
      return corrupt("seeded letter in pending set");
    }
  }
  for (size_t i = 0; i < state.segment_mask.size(); ++i) {
    const uint32_t index = state.segment_mask[i];
    if (i > 0 && index <= state.segment_mask[i - 1]) {
      return corrupt("segment mask not sorted");
    }
    if (index >= space.size()) return corrupt("segment mask index out of range");
    if (space.letter(index).position >= state.segment_position) {
      return corrupt("segment mask letter at an unseen position");
    }
  }
  uint64_t total_hits = 0;
  for (const auto& [mask_bits, count] : state.hits) {
    if (count == 0) return corrupt("zero hit count");
    if (mask_bits.size() < 2) return corrupt("hit mask below two letters");
    for (size_t i = 0; i < mask_bits.size(); ++i) {
      if (i > 0 && mask_bits[i] <= mask_bits[i - 1]) {
        return corrupt("hit mask not sorted");
      }
      if (mask_bits[i] >= space.size()) {
        return corrupt("hit mask index out of range");
      }
    }
    if (count > pattern_horizon - total_hits) {
      return corrupt("hit counts exceed committed segments");
    }
    total_hits += count;
  }
  if (full_state.window_segments == 0) {
    if (!full_state.window_masks.empty()) {
      return corrupt("window masks without a pattern window");
    }
  } else {
    // The retained masks must exist for exactly the effective window, and
    // re-aggregating them must reproduce both the per-letter counts and the
    // hit multiset -- the eviction-safety invariant: what the window says
    // was contributed is exactly what a future eviction will withdraw.
    if (full_state.window_masks.size() != pattern_horizon) {
      return corrupt("window mask count mismatch");
    }
    std::vector<uint64_t> recount(space.size(), 0);
    std::map<std::vector<uint32_t>, uint64_t> remasked;
    for (const std::vector<uint32_t>& mask : full_state.window_masks) {
      for (size_t i = 0; i < mask.size(); ++i) {
        if (i > 0 && mask[i] <= mask[i - 1]) {
          return corrupt("window mask not sorted");
        }
        if (mask[i] >= space.size()) {
          return corrupt("window mask index out of range");
        }
        ++recount[mask[i]];
      }
      if (mask.size() >= 2) ++remasked[mask];
    }
    if (recount != state.seeded_counts) {
      return corrupt("window masks disagree with seeded counts");
    }
    if (remasked.size() != state.hits.size()) {
      return corrupt("window masks disagree with hits");
    }
    auto it = remasked.begin();
    for (const auto& [mask_bits, count] : state.hits) {
      // `state.hits` is sorted by mask, as is the std::map: compare in step.
      if (it->first != mask_bits || it->second != count) {
        return corrupt("window masks disagree with hits");
      }
      ++it;
    }
  }

  miner->seeded_counts_ = state.seeded_counts;
  for (uint32_t position = 0; position < period; ++position) {
    for (const auto& [feature, count] : state.other_counts[position]) {
      miner->other_counts_[position][feature] = count;
    }
  }
  miner->window_history_.assign(state.window_history.begin(),
                                state.window_history.end());
  miner->window_masks_.assign(full_state.window_masks.begin(),
                              full_state.window_masks.end());
  miner->pending_other_ = state.pending_other;
  for (const uint32_t index : state.segment_mask) {
    miner->segment_mask_.Set(index);
  }
  miner->segment_position_ = state.segment_position;
  miner->instants_seen_ = state.instants_seen;
  miner->segments_committed_ = state.segments_committed;
  if (full_state.window_segments > 0) {
    miner->segments_evicted_ =
        state.segments_committed - full_state.window_masks.size();
  }
  for (const auto& [mask_bits, count] : state.hits) {
    Bitset mask(space.size());
    for (const uint32_t index : mask_bits) mask.Set(index);
    miner->store_->AddHits(mask, count);
  }
  return miner;
}

ContinuousMiner::ContinuousMiner(const MiningOptions& options,
                                 LetterSpace space,
                                 const ContinuousOptions& continuous)
    : options_(options),
      space_(std::move(space)),
      drift_window_(continuous.drift_window),
      window_segments_(continuous.window_segments),
      compact_every_(continuous.compact_every),
      store_(MakeHitStore(options.hit_store, space_.full_mask(),
                          space_.size())),
      seeded_counts_(space_.size(), 0),
      other_counts_(options.period),
      segment_mask_(space_.size()),
      instants_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.stream.instants")),
      segments_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.stream.segments_committed")),
      snapshots_counter_(
          obs::MetricsRegistry::Global().GetCounter("ppm.stream.snapshots")),
      evictions_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.stream.incremental.evictions")),
      compactions_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.stream.incremental.compactions")),
      nodes_reclaimed_counter_(obs::MetricsRegistry::Global().GetCounter(
          "ppm.stream.incremental.nodes_reclaimed")) {}

void ContinuousMiner::Append(const tsdb::FeatureSet& instant) {
  ++instants_seen_;
  instants_counter_.Inc();
  const uint32_t position = segment_position_;

  // Seeded letters accumulate into the in-flight segment mask; everything
  // else is tallied for drift detection. Counts commit with the segment so
  // a trailing partial segment never skews confidences.
  space_.AccumulatePosition(position, instant, &segment_mask_);
  instant.ForEach([this, position](uint32_t feature) {
    if (space_.IndexOf(position, feature) == Bitset::kNoBit) {
      pending_other_.push_back(Letter{position, feature});
    }
  });

  if (++segment_position_ == options_.period) CommitSegment();
}

void ContinuousMiner::CommitSegment() {
  segment_mask_.ForEach(
      [this](uint32_t letter) { ++seeded_counts_[letter]; });
  if (segment_mask_.Count() >= 2) store_->AddHit(segment_mask_);
  for (const Letter& letter : pending_other_) {
    ++other_counts_[letter.position][letter.feature];
  }
  if (drift_window_ > 0) {
    window_history_.push_back(pending_other_);
    if (window_history_.size() > drift_window_) {
      // Expire the oldest segment's contribution to the drift counts.
      for (const Letter& letter : window_history_.front()) {
        auto& counts = other_counts_[letter.position];
        const auto it = counts.find(letter.feature);
        if (it != counts.end() && --it->second == 0) counts.erase(it);
      }
      window_history_.pop_front();
    }
  }
  if (window_segments_ > 0) {
    window_masks_.push_back(segment_mask_.ToVector());
    if (window_masks_.size() > window_segments_) EvictOldestSegment();
  }
  ++segments_committed_;
  segments_counter_.Inc();
  segment_mask_.Reset();
  pending_other_.clear();
  segment_position_ = 0;
  if (compact_every_ > 0 && segments_committed_ % compact_every_ == 0) {
    Compact();
  }
}

void ContinuousMiner::EvictOldestSegment() {
  // Withdraw exactly what the expired segment contributed at commit time:
  // one count per seeded letter, and its hit mask if it registered one.
  const std::vector<uint32_t>& bits = window_masks_.front();
  for (const uint32_t index : bits) {
    PPM_DCHECK(seeded_counts_[index] > 0);
    --seeded_counts_[index];
  }
  if (bits.size() >= 2) {
    Bitset mask(space_.size());
    for (const uint32_t index : bits) mask.Set(index);
    store_->RemoveHits(mask, 1);
  }
  window_masks_.pop_front();
  ++segments_evicted_;
  evictions_counter_.Inc();
}

void ContinuousMiner::Compact() {
  const uint64_t before_units = store_->num_units();
  std::unique_ptr<HitStore> rebuilt =
      MakeHitStore(options_.hit_store, space_.full_mask(), space_.size());
  rebuilt->Merge(*store_);
  store_ = std::move(rebuilt);
  compactions_counter_.Inc();
  const uint64_t after_units = store_->num_units();
  if (before_units > after_units) {
    nodes_reclaimed_counter_.Inc(before_units - after_units);
  }
}

uint64_t ContinuousMiner::ApproxMemoryBytes() const {
  uint64_t total = sizeof(ContinuousMiner) + store_->ApproxMemoryBytes();
  total += seeded_counts_.capacity() * sizeof(uint64_t);
  for (const auto& counts : other_counts_) {
    total += counts.size() * 32;  // Node + key/value overhead per entry.
  }
  for (const auto& segment : window_history_) {
    total += segment.capacity() * sizeof(Letter);
  }
  for (const auto& mask : window_masks_) {
    total += mask.capacity() * sizeof(uint32_t);
  }
  return total;
}

MiningResult ContinuousMiner::Snapshot() const {
  obs::TraceSpan span = obs::Tracer::Global().StartSpan("stream.snapshot");
  snapshots_counter_.Inc();
  const uint64_t effective = effective_segments();
  MiningResult result;
  result.stats().num_periods = effective;
  if (effective == 0) return result;

  F1ScanResult f1;
  f1.num_periods = effective;
  f1.min_count = options_.EffectiveMinCount(effective);
  f1.space = space_;
  f1.letter_counts = seeded_counts_;

  // A snapshot honors the run's interrupt: when it fires mid-derivation the
  // snapshot simply carries the levels finished so far (each individually
  // correct), since `Snapshot` has no error channel.
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, options_.max_letters,
      [this](const Bitset& mask) { return store_->CountSuperpatterns(mask); },
      &result, nullptr, options_.interrupt());
  result.Canonicalize();
  result.stats().num_f1_letters = space_.size();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store_->num_entries();
  result.stats().tree_nodes =
      options_.hit_store == HitStoreKind::kMaxSubpatternTree
          ? store_->num_units()
          : 0;
  obs::MetricsRegistry::Global()
      .GetGauge("ppm.resource.hit_store_bytes")
      .Set(store_->ApproxMemoryBytes());
  span.End();
  result.stats().elapsed_seconds = span.ElapsedSeconds();
  return result;
}

std::vector<Letter> ContinuousMiner::DriftedLetters() const {
  std::vector<Letter> drifted;
  if (segments_committed_ == 0) return drifted;
  const uint64_t horizon =
      drift_window_ > 0
          ? std::min<uint64_t>(segments_committed_, drift_window_)
          : segments_committed_;
  const uint64_t min_count = options_.EffectiveMinCount(horizon);
  for (uint32_t position = 0; position < options_.period; ++position) {
    for (const auto& [feature, count] : other_counts_[position]) {
      if (count >= min_count) drifted.push_back(Letter{position, feature});
    }
  }
  return drifted;
}

}  // namespace ppm::stream
