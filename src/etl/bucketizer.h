#ifndef PPM_ETL_BUCKETIZER_H_
#define PPM_ETL_BUCKETIZER_H_

#include <cstdint>

#include "etl/event_log.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::etl {

/// How an event log becomes a feature time series.
struct BucketizeOptions {
  /// Width of one time instant, in the log's timestamp unit (e.g. 3600 for
  /// hourly instants over epoch-second logs). Must be positive.
  int64_t bucket_width = 3600;

  /// Timestamp of the left edge of instant 0. `kAutoOrigin` snaps to the
  /// earliest event, rounded down to a multiple of `bucket_width` -- so
  /// e.g. hourly buckets start on the hour regardless of the first event's
  /// offset, keeping period offsets aligned with wall-clock slots.
  static constexpr int64_t kAutoOrigin = INT64_MIN;
  int64_t origin = kAutoOrigin;

  /// Timestamp past the last instant; `kAutoEnd` covers the latest event.
  static constexpr int64_t kAutoEnd = INT64_MIN;
  int64_t end = kAutoEnd;
};

/// Groups events into fixed-width buckets: instant `i` holds the set of
/// distinct features observed in `[origin + i*w, origin + (i+1)*w)`.
/// Buckets with no events become empty instants (time passes even when
/// nothing happens -- required for period offsets to stay aligned).
/// Events outside `[origin, end)` are dropped.
Result<tsdb::TimeSeries> Bucketize(const EventLog& log,
                                   const BucketizeOptions& options);

/// The origin `Bucketize` will use: `options.origin`, or for `kAutoOrigin`
/// the earliest event floored to a `bucket_width` boundary (floor division,
/// correct for negative timestamps).
Result<int64_t> ResolveOrigin(const EventLog& log,
                              const BucketizeOptions& options);

/// Calendar helpers for epoch-second timestamps (UTC, Gregorian).
/// 1970-01-01 was a Thursday.
int64_t DaysSinceEpoch(int64_t timestamp);
/// 0 = Monday .. 6 = Sunday.
int DayOfWeek(int64_t timestamp);
/// 0..23.
int HourOfDay(int64_t timestamp);
/// Offset of `timestamp` within a week of hourly slots: 0..167,
/// 0 = Monday 00:00 UTC. Useful as the period offset for weekly mining.
int HourOfWeek(int64_t timestamp);

/// Appends a calendar feature (e.g. "dow3", "hour17") to every instant of a
/// bucketized series, so patterns can anchor on wall-clock context even when
/// mined at a different period. `series` must have been produced with the
/// given `origin`/`bucket_width`.
enum class CalendarFeature { kDayOfWeek, kHourOfDay };
void AnnotateCalendar(tsdb::TimeSeries* series, int64_t origin,
                      int64_t bucket_width, CalendarFeature feature);

}  // namespace ppm::etl

#endif  // PPM_ETL_BUCKETIZER_H_
