#ifndef PPM_ETL_EVENT_LOG_H_
#define PPM_ETL_EVENT_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ppm::etl {

/// One raw observation: a named event at an absolute time.
///
/// Timestamps are int64 seconds since the Unix epoch (UTC); any other
/// monotone tick unit works as long as it is used consistently with the
/// bucket width.
struct Event {
  int64_t timestamp = 0;
  std::string feature;

  friend bool operator==(const Event& a, const Event& b) {
    return a.timestamp == b.timestamp && a.feature == b.feature;
  }
};

/// An append-only log of raw events, the input of feature derivation
/// (Section 2: "for each time instant i, let D_i be a set of features
/// derived from the dataset collected at the instant").
class EventLog {
 public:
  EventLog() = default;

  void Add(int64_t timestamp, std::string_view feature) {
    events_.push_back(Event{timestamp, std::string(feature)});
  }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<Event>& events() const { return events_; }

  /// Sorts events by timestamp (stable, so same-instant order is kept).
  void SortByTime();

  /// Smallest / largest timestamp; error when empty.
  Result<int64_t> MinTimestamp() const;
  Result<int64_t> MaxTimestamp() const;

 private:
  std::vector<Event> events_;
};

/// Parses a text event log: one event per line, `<timestamp> <feature>`,
/// '#' comments and blank lines skipped. Timestamps are signed integers.
Result<EventLog> ReadEventLog(const std::string& path);

/// Writes the inverse of `ReadEventLog`.
Status WriteEventLog(const EventLog& log, const std::string& path);

}  // namespace ppm::etl

#endif  // PPM_ETL_EVENT_LOG_H_
