#include "etl/bucketizer.h"

#include <string>

namespace ppm::etl {

namespace {

/// Floor division for possibly-negative numerators.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

Result<tsdb::TimeSeries> Bucketize(const EventLog& log,
                                   const BucketizeOptions& options) {
  if (options.bucket_width <= 0) {
    return Status::InvalidArgument("bucket_width must be positive");
  }
  if (log.empty()) {
    return Status::InvalidArgument("cannot bucketize an empty event log");
  }

  PPM_ASSIGN_OR_RETURN(const int64_t origin, ResolveOrigin(log, options));
  int64_t end = options.end;
  if (end == BucketizeOptions::kAutoEnd) {
    PPM_ASSIGN_OR_RETURN(const int64_t last, log.MaxTimestamp());
    end = last + 1;
  }
  if (end <= origin) {
    return Status::InvalidArgument("end must be after origin");
  }

  const uint64_t num_buckets = static_cast<uint64_t>(
      FloorDiv(end - origin - 1, options.bucket_width) + 1);
  // A hard sanity cap: one billion instants is beyond any sane bucketing
  // and indicates mismatched units (e.g. nanosecond stamps, second width).
  if (num_buckets > 1000000000ull) {
    return Status::InvalidArgument(
        "bucketing would produce " + std::to_string(num_buckets) +
        " instants; check timestamp units vs bucket_width");
  }

  tsdb::TimeSeries series;
  series.AppendEmpty(num_buckets);
  for (const Event& event : log.events()) {
    if (event.timestamp < origin || event.timestamp >= end) continue;
    const uint64_t bucket = static_cast<uint64_t>(
        FloorDiv(event.timestamp - origin, options.bucket_width));
    series.at(bucket).Set(series.symbols().Intern(event.feature));
  }
  return series;
}

Result<int64_t> ResolveOrigin(const EventLog& log,
                              const BucketizeOptions& options) {
  if (options.bucket_width <= 0) {
    return Status::InvalidArgument("bucket_width must be positive");
  }
  if (options.origin != BucketizeOptions::kAutoOrigin) return options.origin;
  PPM_ASSIGN_OR_RETURN(const int64_t first, log.MinTimestamp());
  return FloorDiv(first, options.bucket_width) * options.bucket_width;
}

int64_t DaysSinceEpoch(int64_t timestamp) {
  return FloorDiv(timestamp, 86400);
}

int DayOfWeek(int64_t timestamp) {
  // 1970-01-01 (day 0) was a Thursday; Monday-based index 3.
  return static_cast<int>(FloorMod(DaysSinceEpoch(timestamp) + 3, 7));
}

int HourOfDay(int64_t timestamp) {
  return static_cast<int>(FloorMod(timestamp, 86400) / 3600);
}

int HourOfWeek(int64_t timestamp) {
  return DayOfWeek(timestamp) * 24 + HourOfDay(timestamp);
}

void AnnotateCalendar(tsdb::TimeSeries* series, int64_t origin,
                      int64_t bucket_width, CalendarFeature feature) {
  for (uint64_t i = 0; i < series->length(); ++i) {
    const int64_t timestamp = origin + static_cast<int64_t>(i) * bucket_width;
    std::string name;
    switch (feature) {
      case CalendarFeature::kDayOfWeek:
        name = "dow" + std::to_string(DayOfWeek(timestamp));
        break;
      case CalendarFeature::kHourOfDay:
        name = "hour" + std::to_string(HourOfDay(timestamp));
        break;
    }
    series->at(i).Set(series->symbols().Intern(name));
  }
}

}  // namespace ppm::etl
