#include "etl/event_log.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace ppm::etl {

void EventLog::SortByTime() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.timestamp < b.timestamp;
                   });
}

Result<int64_t> EventLog::MinTimestamp() const {
  if (events_.empty()) return Status::InvalidArgument("empty event log");
  int64_t min = events_.front().timestamp;
  for (const Event& event : events_) {
    if (event.timestamp < min) min = event.timestamp;
  }
  return min;
}

Result<int64_t> EventLog::MaxTimestamp() const {
  if (events_.empty()) return Status::InvalidArgument("empty event log");
  int64_t max = events_.front().timestamp;
  for (const Event& event : events_) {
    if (event.timestamp > max) max = event.timestamp;
  }
  return max;
}

Result<EventLog> ReadEventLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  EventLog log;
  std::string line;
  uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const size_t space = stripped.find(' ');
    if (space == std::string_view::npos) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": expected '<timestamp> <feature>'");
    }
    const std::string ts_text(stripped.substr(0, space));
    char* end = nullptr;
    const long long timestamp = std::strtoll(ts_text.c_str(), &end, 10);
    if (end == ts_text.c_str() || *end != '\0') {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": bad timestamp '" + ts_text + "'");
    }
    const std::string_view feature = StripWhitespace(stripped.substr(space + 1));
    if (feature.empty()) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": empty feature");
    }
    log.Add(static_cast<int64_t>(timestamp), feature);
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return log;
}

Status WriteEventLog(const EventLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const Event& event : log.events()) {
    out << event.timestamp << ' ' << event.feature << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace ppm::etl
