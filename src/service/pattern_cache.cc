#include "service/pattern_cache.h"

#include <cstdio>
#include <utility>

namespace ppm::service {

PatternCache::PatternCache(SeriesStore* store, uint64_t memory_budget_bytes)
    : store_(store), memory_budget_bytes_(memory_budget_bytes) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  hits_ = registry.GetCounter("ppm.server.cache.hits");
  misses_ = registry.GetCounter("ppm.server.cache.misses");
  refreshes_ = registry.GetCounter("ppm.server.cache.refreshes");
  invalidations_ = registry.GetCounter("ppm.server.cache.invalidations");
  evictions_ = registry.GetCounter("ppm.server.cache.evictions");
  bytes_gauge_ = registry.GetGauge("ppm.server.cache.bytes");
  entries_gauge_ = registry.GetGauge("ppm.server.cache.entries");
}

std::string PatternCache::EncodeKey(const Request& request) const {
  char conf[40];
  std::snprintf(conf, sizeof(conf), "%.17g", request.options.min_confidence);
  std::string key = request.series;
  key += '\n';
  key += std::to_string(request.options.period);
  key += '/';
  key += std::to_string(static_cast<int>(request.algorithm));
  key += '/';
  key += conf;
  key += '/';
  key += std::to_string(request.options.min_count);
  key += '/';
  key += std::to_string(request.options.max_letters);
  return key;
}

std::shared_ptr<PatternCache::Entry> PatternCache::GetOrCreate(
    const Request& request) {
  const std::string key = EncodeKey(request);
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second;
  auto entry = std::make_shared<Entry>();
  entry->series = request.series;
  entries_.emplace(key, entry);
  entries_gauge_.Set(entries_.size());
  return entry;
}

Result<PatternCache::Response> PatternCache::Serve(const Request& request) {
  PPM_ASSIGN_OR_RETURN(const auto current,
                       store_->VersionAndLength(request.series));
  const uint64_t now_version = current.first;
  const uint64_t now_length = current.second;
  std::shared_ptr<Entry> entry = GetOrCreate(request);
  const uint64_t tick = ++lru_tick_;

  if (!request.force_rebuild) {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->last_used = tick;
    if (entry->memo_valid && entry->memo_version == now_version) {
      hits_.Inc();
      Response response;
      response.result = entry->memo;
      response.symbols = entry->symbols;
      response.outcome = Outcome::kHit;
      response.version = now_version;
      response.length = now_length;
      return response;
    }
    if (entry->miner != nullptr && entry->miner_in_sync &&
        entry->fed_version == now_version &&
        entry->miner->DriftedLetters().empty()) {
      // The resident miner absorbed every append and no unseeded letter
      // went frequent: one O(hit store) derivation refreshes the memo.
      entry->memo = entry->miner->Snapshot();
      entry->memo_valid = true;
      entry->memo_version = now_version;
      entry->memo_length = now_length;
      refreshes_.Inc();
      Response response;
      response.result = entry->memo;
      response.symbols = entry->symbols;
      response.outcome = Outcome::kRefresh;
      response.version = now_version;
      response.length = now_length;
      return response;
    }
  }

  // Rebuild: seed a fresh miner from a consistent snapshot, outside every
  // lock (mining is the expensive part). The snapshot may be newer than
  // `now_version` if appends raced in -- its own version is what the
  // response reports.
  PPM_ASSIGN_OR_RETURN(SeriesSnapshot snapshot,
                       store_->Snapshot(request.series));
  PPM_ASSIGN_OR_RETURN(
      std::unique_ptr<stream::ContinuousMiner> miner,
      stream::ContinuousMiner::SeedFromPrefix(request.options,
                                              snapshot.series));
  MiningResult result = miner->Snapshot();
  misses_.Inc();

  const std::string key = EncodeKey(request);
  uint64_t new_bytes =
      miner->ApproxMemoryBytes() + result.size() * 64 + sizeof(Entry);
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->last_used = tick;
    entry->miner = std::move(miner);
    entry->symbols = snapshot.series.symbols();
    entry->fed_version = snapshot.version;
    // A mutation delivered while we were mining never reached this miner.
    entry->miner_in_sync = entry->last_mutation_version <= snapshot.version;
    entry->memo = result;
    entry->memo_valid = true;
    entry->memo_version = snapshot.version;
    entry->memo_length = snapshot.series.length();
  }
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) {
      total_bytes_ += new_bytes - entry->approx_bytes;
      entry->approx_bytes = new_bytes;
      bytes_gauge_.Set(total_bytes_);
      MaybeEvict();
    }
  }

  Response response;
  response.result = std::move(result);
  response.symbols = snapshot.series.symbols();
  response.outcome = Outcome::kMiss;
  response.version = snapshot.version;
  response.length = snapshot.series.length();
  return response;
}

void PatternCache::OnMutation(const SeriesStore::Mutation& mutation) {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> affected;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    for (const auto& [key, entry] : entries_) {
      if (entry->series == mutation.name) affected.emplace_back(key, entry);
    }
  }
  for (const auto& [key, entry] : affected) {
    bool shrank = false;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->last_mutation_version = mutation.version;
      if (mutation.kind == SeriesStore::Mutation::Kind::kAppend &&
          entry->miner != nullptr && entry->miner_in_sync &&
          entry->fed_version + 1 == mutation.version &&
          mutation.delta != nullptr) {
        // O(Δ): feed the appended instants to the resident miner.
        for (const tsdb::FeatureSet& instant : *mutation.delta) {
          entry->miner->Append(instant);
        }
        entry->fed_version = mutation.version;
      } else {
        // Replaced, dropped, or a missed delta: the resident state no
        // longer extends the stored series.
        entry->miner.reset();
        entry->miner_in_sync = false;
        shrank = true;
      }
      if (entry->memo_valid) invalidations_.Inc();
    }
    if (shrank) {
      std::lock_guard<std::mutex> lock(map_mu_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) {
        total_bytes_ -= entry->approx_bytes;
        entry->approx_bytes = 0;
        bytes_gauge_.Set(total_bytes_);
      }
    }
  }
}

void PatternCache::MaybeEvict() {
  // Caller holds `map_mu_`.
  if (memory_budget_bytes_ == 0) return;
  while (total_bytes_ > memory_budget_bytes_ && !entries_.empty()) {
    auto victim = entries_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const uint64_t used =
          it->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    total_bytes_ -= victim->second->approx_bytes;
    entries_.erase(victim);
    evictions_.Inc();
  }
  bytes_gauge_.Set(total_bytes_);
  entries_gauge_.Set(entries_.size());
}

uint64_t PatternCache::entry_count() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return entries_.size();
}

uint64_t PatternCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return total_bytes_;
}

}  // namespace ppm::service
