#ifndef PPM_SERVICE_SERIES_STORE_H_
#define PPM_SERVICE_SERIES_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tsdb/database.h"
#include "tsdb/time_series.h"
#include "tsdb/wal.h"
#include "util/status.h"

namespace ppm::service {

/// Reads a series file: the text codec for `.txt` paths, binary otherwise
/// (the suffix convention every `ppm` command uses).
Result<tsdb::TimeSeries> LoadSeriesFile(const std::string& path);

/// Writes a series file with the same suffix convention.
Status SaveSeriesFile(const tsdb::TimeSeries& series, const std::string& path);

/// A consistent point-in-time copy of one stored series.
struct SeriesSnapshot {
  tsdb::TimeSeries series;
  /// Monotonic per-series mutation counter (bumped by put/append); two
  /// snapshots with equal versions hold identical series.
  uint64_t version = 0;
};

/// Thread-safe, WAL-durable catalog of named series: the storage half of
/// the service layer (docs/SERVING.md).
///
/// `tsdb::Database` stays the single-threaded on-disk catalog it always
/// was; `SeriesStore` wraps it with per-series locking, an in-memory copy
/// of each opened series, and a per-series *tail WAL* (`<name>.wal` beside
/// the payload, framed exactly like the stream WAL) holding the instants
/// appended since the last full rewrite of the `.series` payload. Record
/// sequence numbers are instant indices, so recovery is: load the payload,
/// then `ReplayWalTail` from its length. Appends are durable when they
/// return (subject to the configured fsync mode); `Put` and `Drop` rewrite
/// or remove the payload and reset the tail log.
///
/// Lock order: the catalog map lock, then one series' lock, then the
/// database lock. No path takes two series locks at once.
class SeriesStore {
 public:
  struct Options {
    /// Fsync mode of the per-series tail WALs.
    tsdb::WalFsync wal_fsync = tsdb::WalFsync::kAlways;
    /// Retention cap: a series that grows past this many instants has its
    /// oldest instants truncated (and its payload compacted, resetting the
    /// tail WAL) on the mutation that overflowed it. 0 = unlimited.
    uint64_t max_instants_per_series = 0;
  };

  /// What changed, delivered to the mutation listener *while the mutated
  /// series' lock is held* -- so a pattern cache can invalidate or feed its
  /// incremental miners without racing a concurrent query's snapshot.
  struct Mutation {
    /// kTruncate: the retention cap dropped the series' oldest instants
    /// (listeners must treat the series as rewritten -- offsets shifted).
    enum class Kind { kPut, kAppend, kDrop, kTruncate };
    Kind kind = Kind::kAppend;
    std::string name;
    /// Series version after the mutation.
    uint64_t version = 0;
    /// Series length after the mutation.
    uint64_t length = 0;
    /// The appended instants (kAppend only; null otherwise).
    const std::vector<tsdb::FeatureSet>* delta = nullptr;
  };
  using MutationListener = std::function<void(const Mutation&)>;

  /// Opens the catalog at `root` (creating it if absent). Series payloads
  /// are loaded lazily on first access; tail WALs replay at that point.
  static Result<std::unique_ptr<SeriesStore>> Open(const std::string& root,
                                                   const Options& options);
  static Result<std::unique_ptr<SeriesStore>> Open(const std::string& root) {
    return Open(root, Options());
  }

  /// Installs the mutation listener (at most one; the pattern cache).
  /// Must be called before concurrent use.
  void SetMutationListener(MutationListener listener);

  /// Stores (or wholesale replaces) `name`. The payload is rewritten and
  /// the tail WAL reset, so a replace discards the previous tail.
  Status Put(const std::string& name, const tsdb::TimeSeries& series);

  /// Appends instants given as feature-name lists to `name`. New feature
  /// names are interned; when one appears, the payload is compacted first
  /// so the on-disk symbol table always covers every id the tail WAL uses.
  /// Durable when it returns (per the fsync mode).
  Status Append(const std::string& name,
                const std::vector<std::vector<std::string>>& instants);

  /// Point-in-time copy of `name` (payload + replayed tail).
  Result<SeriesSnapshot> Snapshot(const std::string& name) const;

  /// Current version and length of `name` without copying the series.
  Result<std::pair<uint64_t, uint64_t>> VersionAndLength(
      const std::string& name) const;

  /// Removes `name`, its payload, and its tail WAL. NotFound when absent.
  Status Drop(const std::string& name);

  /// Rewrites `name`'s payload with its current contents and resets the
  /// tail WAL (bounded recovery time after long append streams).
  Status Compact(const std::string& name);

  /// Sorted names of all stored series.
  std::vector<std::string> List() const;

  bool Contains(const std::string& name) const;

  const std::string& root() const { return root_; }

 private:
  struct Entry {
    mutable std::mutex mu;
    bool loaded = false;
    bool dropped = false;
    /// Set when a WAL append failed mid-batch: memory and disk may
    /// disagree until the next successful compaction, so mutations are
    /// refused (reads still serve the in-memory state).
    bool poisoned = false;
    tsdb::TimeSeries series;
    uint64_t version = 0;
    std::unique_ptr<tsdb::WalWriter> wal;
    /// Replay told us the existing tail WAL can be appended to (vs. being
    /// absent/stale and needing recreation on first write).
    bool wal_reuse = false;
    uint64_t wal_next_seq = 0;
    uint64_t wal_valid_bytes = 0;
  };

  SeriesStore(std::string root, const Options& options)
      : root_(std::move(root)), options_(options) {}

  std::string WalPathFor(const std::string& name) const;

  /// Finds (or, when `create` is set, inserts) the entry for `name`.
  std::shared_ptr<Entry> FindEntry(const std::string& name,
                                   bool create) const;

  /// Loads the payload and replays the tail WAL; caller holds `entry->mu`.
  Status EnsureLoaded(const std::string& name, Entry* entry) const;

  /// Opens (or creates) the tail WAL writer; caller holds `entry->mu` and
  /// `entry` is loaded.
  Status EnsureWal(const std::string& name, Entry* entry);

  /// Rewrites the payload from memory and resets the tail WAL; caller
  /// holds `entry->mu` and `entry` is loaded.
  Status CompactLocked(const std::string& name, Entry* entry);

  std::string root_;
  Options options_;
  std::unique_ptr<tsdb::Database> db_;
  MutationListener listener_;

  /// Guards `entries_` (lookup/insert only -- never held across I/O).
  mutable std::mutex map_mu_;
  mutable std::map<std::string, std::shared_ptr<Entry>> entries_;

  /// Serializes every `tsdb::Database` call (it is single-threaded by
  /// contract). Acquired after a series lock, never before.
  mutable std::mutex db_mu_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_SERIES_STORE_H_
