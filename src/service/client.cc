#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ppm::service {

namespace {

/// One connect attempt. `*transient` is set when the failure is a
/// startup race worth retrying: the daemon hasn't created the socket
/// file yet (ENOENT) or has bound it but isn't accepting yet
/// (ECONNREFUSED). Everything else -- permissions, a path that isn't a
/// socket, protocol mismatch after connecting -- is permanent.
Result<int> ConnectOnce(const std::string& socket_path, bool* transient) {
  *transient = false;
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    *transient = (err == ECONNREFUSED || err == ENOENT);
    return Status::IoError("connect(" + socket_path +
                           ") failed: " + std::strerror(err));
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& socket_path) {
  bool transient = false;
  PPM_ASSIGN_OR_RETURN(const int fd, ConnectOnce(socket_path, &transient));
  std::unique_ptr<Client> client(new Client(fd));
  PPM_RETURN_IF_ERROR(wire::WriteMagic(fd));
  PPM_RETURN_IF_ERROR(wire::ExpectMagic(fd));
  return client;
}

Result<std::unique_ptr<Client>> Client::ConnectWithRetry(
    const std::string& socket_path, uint64_t wait_ms,
    uint64_t retry_interval_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  if (retry_interval_ms == 0) retry_interval_ms = 1;
  while (true) {
    bool transient = false;
    const Result<int> fd = ConnectOnce(socket_path, &transient);
    if (fd.ok()) {
      std::unique_ptr<Client> client(new Client(*fd));
      PPM_RETURN_IF_ERROR(wire::WriteMagic(*fd));
      PPM_RETURN_IF_ERROR(wire::ExpectMagic(*fd));
      return client;
    }
    if (!transient || std::chrono::steady_clock::now() >= deadline) {
      return fd.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_interval_ms));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<wire::Response> Client::Call(const wire::Request& request) {
  PPM_RETURN_IF_ERROR(wire::WriteFrame(fd_, wire::EncodeRequest(request)));
  PPM_ASSIGN_OR_RETURN(std::string frame, wire::ReadFrame(fd_));
  return wire::DecodeResponse(frame);
}

Result<wire::Response> Client::CallWithRetry(const wire::Request& request,
                                             uint64_t retry_budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_budget_ms);
  uint64_t backoff_ms = 50;
  while (true) {
    Result<wire::Response> response = Call(request);
    if (!response.ok()) return response;
    const bool shed =
        response->code ==
            static_cast<uint8_t>(StatusCode::kResourceExhausted) &&
        response->retry_after_ms > 0;
    if (!shed) return response;

    const uint64_t sleep_ms = std::max<uint64_t>(
        response->retry_after_ms, backoff_ms);
    backoff_ms = std::min<uint64_t>(backoff_ms * 2, 2000);
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(sleep_ms);
    if (wake >= deadline) return response;  // Budget spent: surface the shed.
    std::this_thread::sleep_until(wake);
  }
}

}  // namespace ppm::service
