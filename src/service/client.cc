#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ppm::service {

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& socket_path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect(" + socket_path +
                           ") failed: " + std::strerror(err));
  }
  std::unique_ptr<Client> client(new Client(fd));
  PPM_RETURN_IF_ERROR(wire::WriteMagic(fd));
  PPM_RETURN_IF_ERROR(wire::ExpectMagic(fd));
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<wire::Response> Client::Call(const wire::Request& request) {
  PPM_RETURN_IF_ERROR(wire::WriteFrame(fd_, wire::EncodeRequest(request)));
  PPM_ASSIGN_OR_RETURN(std::string frame, wire::ReadFrame(fd_));
  return wire::DecodeResponse(frame);
}

}  // namespace ppm::service
