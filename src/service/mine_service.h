#ifndef PPM_SERVICE_MINE_SERVICE_H_
#define PPM_SERVICE_MINE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/miner.h"
#include "core/mining_options.h"
#include "obs/metrics.h"
#include "service/pattern_cache.h"
#include "service/series_store.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppm::service {

/// Configuration of one serving instance.
struct MineServiceOptions {
  /// Fsync mode of the per-series tail WALs (kAlways: an acknowledged
  /// append survives a crash).
  tsdb::WalFsync wal_fsync = tsdb::WalFsync::kAlways;

  /// Per-request admission budget in bytes: every mine/query runs with
  /// this `memory_budget_bytes` under `BudgetPolicy::kFail`, so a request
  /// whose Property 3.2 hit-set prediction (or observed working set)
  /// exceeds it is rejected with `kResourceExhausted` -- it never degrades
  /// or destabilizes the resident process. 0 = unlimited.
  uint64_t mining_memory_budget_bytes = 0;

  /// Cap on resident pattern-cache state (LRU-evicted past it; 0 =
  /// unbounded).
  uint64_t cache_memory_budget_bytes = 0;

  /// Retention cap forwarded to `SeriesStore::Options`: series keep only
  /// their newest N instants; overflowing appends truncate the oldest and
  /// compact the tail WAL. 0 = unlimited.
  uint64_t max_instants_per_series = 0;
};

/// One mine/query call.
struct QueryRequest {
  std::string series;
  uint32_t period = 0;
  double min_confidence = 0.8;
  uint64_t min_count = 0;
  uint32_t max_letters = 0;
  Algorithm algorithm = Algorithm::kMaxSubpatternHitSet;
  /// `mine` semantics: always re-mine a fresh snapshot (and update the
  /// cache). `query` semantics (false) serves from the cache when it can.
  bool force_rebuild = false;
  /// Per-request interruption, mapped from the wire deadline by the
  /// daemon and from SIGINT by the CLI.
  Deadline deadline;
  CancelToken cancel;
};

/// The transport-free service layer: every operation the CLI adapters and
/// the `ppmd` daemon expose, over one `SeriesStore` + `PatternCache`
/// (docs/SERVING.md). Thread-safe; one instance serves every connection.
class MineService {
 public:
  static Result<std::unique_ptr<MineService>> Open(
      const std::string& root, const MineServiceOptions& options = {});

  /// Stores (or replaces) a series.
  Status Put(const std::string& name, const tsdb::TimeSeries& series);

  /// Appends instants (feature-name lists) to a series; durable on return.
  Status Append(const std::string& name,
                const std::vector<std::vector<std::string>>& instants);

  /// Point-in-time copy of a series.
  Result<SeriesSnapshot> Get(const std::string& name);

  Status Drop(const std::string& name);

  std::vector<std::string> List() const;

  /// Mines or serves patterns (see `QueryRequest::force_rebuild`).
  /// Rejections under the admission budget surface as
  /// `kResourceExhausted` and count into `ppm.server.rejected`.
  Result<PatternCache::Response> Query(const QueryRequest& request);

  /// The server's RunReport JSON (`--stats-json` format): build
  /// fingerprint + the full `ppm.server.*` / mining metrics registry.
  std::string StatsJson() const;

  /// Prometheus text exposition of the metrics registry.
  std::string MetricsProm() const;

  /// Pattern-cache budget pressure in [0, 1]: resident bytes over the
  /// configured cache budget (0 when unbounded). Feeds the admission
  /// controller's readiness state.
  double CachePressure() const;

  SeriesStore& store() { return *store_; }
  PatternCache& cache() { return *cache_; }

 private:
  explicit MineService(const MineServiceOptions& options)
      : options_(options) {}

  MineServiceOptions options_;
  std::unique_ptr<SeriesStore> store_;
  std::unique_ptr<PatternCache> cache_;

  obs::Counter requests_;
  obs::Counter rejected_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_MINE_SERVICE_H_
