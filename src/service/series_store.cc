#include "service/series_store.h"

#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "tsdb/series_codec.h"
#include "util/log.h"

namespace ppm::service {

namespace fs = std::filesystem;

namespace {

bool HasSuffix(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Result<tsdb::TimeSeries> LoadSeriesFile(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty series path");
  if (HasSuffix(path, ".txt")) return tsdb::ReadTextSeries(path);
  return tsdb::ReadBinarySeries(path);
}

Status SaveSeriesFile(const tsdb::TimeSeries& series, const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty series path");
  if (HasSuffix(path, ".txt")) return tsdb::WriteTextSeries(series, path);
  return tsdb::WriteBinarySeries(series, path);
}

Result<std::unique_ptr<SeriesStore>> SeriesStore::Open(const std::string& root,
                                                       const Options& options) {
  std::unique_ptr<SeriesStore> store(new SeriesStore(root, options));
  PPM_ASSIGN_OR_RETURN(store->db_, tsdb::Database::Open(root));
  return store;
}

void SeriesStore::SetMutationListener(MutationListener listener) {
  listener_ = std::move(listener);
}

std::string SeriesStore::WalPathFor(const std::string& name) const {
  return root_ + "/" + name + ".wal";
}

std::shared_ptr<SeriesStore::Entry> SeriesStore::FindEntry(
    const std::string& name, bool create) const {
  std::lock_guard<std::mutex> lock(map_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second;
  if (!create) return nullptr;
  auto entry = std::make_shared<Entry>();
  entries_.emplace(name, entry);
  return entry;
}

Status SeriesStore::EnsureLoaded(const std::string& name, Entry* entry) const {
  if (entry->dropped) return Status::NotFound("dropped series: " + name);
  if (entry->loaded) return Status::OK();
  {
    std::lock_guard<std::mutex> db_lock(db_mu_);
    PPM_ASSIGN_OR_RETURN(entry->series, db_->Get(name));
  }
  // Replay the tail WAL (instants appended since the payload was last
  // rewritten). Record seq == instant index, so replay starts at the
  // payload's length; a stale tail (fully covered by the payload after a
  // crash between compaction steps) is skipped and later recreated.
  const Result<tsdb::WalReplayInfo> replay = tsdb::ReplayWalTail(
      WalPathFor(name), entry->series.length(),
      [entry, &name](uint64_t seq, const tsdb::FeatureSet& instant) {
        if (seq != entry->series.length()) {
          return Status::Corruption(
              "series tail WAL out of step with payload for '" + name +
              "': record seq " + std::to_string(seq) + ", series length " +
              std::to_string(entry->series.length()));
        }
        entry->series.Append(instant);
        return Status::OK();
      });
  if (replay.ok()) {
    if (replay->records_delivered > 0) {
      entry->wal_reuse = true;
      entry->wal_next_seq = replay->next_seq;
      entry->wal_valid_bytes = replay->valid_bytes;
      obs::MetricsRegistry::Global()
          .GetCounter("ppm.server.store.tail_replays")
          .Inc(replay->records_delivered);
    }
  } else if (replay.status().code() != StatusCode::kNotFound) {
    return replay.status();
  }
  entry->loaded = true;
  return Status::OK();
}

Status SeriesStore::EnsureWal(const std::string& name, Entry* entry) {
  if (entry->wal != nullptr) return Status::OK();
  if (entry->wal_reuse) {
    PPM_ASSIGN_OR_RETURN(
        entry->wal,
        tsdb::WalWriter::Open(WalPathFor(name), options_.wal_fsync,
                              entry->wal_next_seq, entry->wal_valid_bytes));
  } else {
    PPM_ASSIGN_OR_RETURN(
        entry->wal,
        tsdb::WalWriter::CreateAt(WalPathFor(name), options_.wal_fsync,
                                  entry->series.length()));
  }
  return Status::OK();
}

Status SeriesStore::CompactLocked(const std::string& name, Entry* entry) {
  {
    std::lock_guard<std::mutex> db_lock(db_mu_);
    PPM_RETURN_IF_ERROR(db_->Put(name, entry->series));
  }
  // The payload now covers everything; start an empty tail after it. A
  // crash before `CreateAt` leaves the old tail fully covered by the new
  // payload, which replay skips (`start_seq` == payload length).
  entry->wal.reset();
  entry->wal_reuse = false;
  PPM_ASSIGN_OR_RETURN(
      entry->wal, tsdb::WalWriter::CreateAt(WalPathFor(name),
                                            options_.wal_fsync,
                                            entry->series.length()));
  entry->poisoned = false;
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.server.store.compactions")
      .Inc();
  return Status::OK();
}

Status SeriesStore::Put(const std::string& name,
                        const tsdb::TimeSeries& series) {
  std::shared_ptr<Entry> entry = FindEntry(name, /*create=*/true);
  std::lock_guard<std::mutex> lock(entry->mu);
  // Retention applies to puts too: only the newest `cap` instants are kept.
  tsdb::TimeSeries clamped;
  const tsdb::TimeSeries* stored = &series;
  const uint64_t cap = options_.max_instants_per_series;
  if (cap > 0 && series.length() > cap) {
    clamped = series;
    clamped.DropFront(series.length() - cap);
    stored = &clamped;
    obs::MetricsRegistry::Global()
        .GetCounter("ppm.server.store.truncated_instants")
        .Inc(series.length() - cap);
  }
  {
    std::lock_guard<std::mutex> db_lock(db_mu_);
    PPM_RETURN_IF_ERROR(db_->Put(name, *stored));
  }
  entry->series = *stored;
  entry->loaded = true;
  entry->dropped = false;
  entry->wal.reset();
  entry->wal_reuse = false;
  PPM_ASSIGN_OR_RETURN(
      entry->wal, tsdb::WalWriter::CreateAt(WalPathFor(name),
                                            options_.wal_fsync,
                                            entry->series.length()));
  entry->poisoned = false;
  ++entry->version;
  obs::MetricsRegistry::Global().GetCounter("ppm.server.store.puts").Inc();
  if (listener_) {
    Mutation mutation;
    mutation.kind = Mutation::Kind::kPut;
    mutation.name = name;
    mutation.version = entry->version;
    mutation.length = entry->series.length();
    listener_(mutation);
  }
  return Status::OK();
}

Status SeriesStore::Append(
    const std::string& name,
    const std::vector<std::vector<std::string>>& instants) {
  if (instants.empty()) return Status::OK();
  std::shared_ptr<Entry> entry = FindEntry(name, /*create=*/true);
  std::lock_guard<std::mutex> lock(entry->mu);
  PPM_RETURN_IF_ERROR(EnsureLoaded(name, entry.get()));
  if (entry->poisoned) {
    return Status::Internal("series '" + name +
                            "' refused writes after an earlier WAL failure");
  }
  PPM_RETURN_IF_ERROR(EnsureWal(name, entry.get()));

  // Interning may grow the symbol table; when it does, the payload must be
  // rewritten before the tail references the new ids (the tail WAL stores
  // ids only -- names live in the payload's symbol table).
  const uint32_t known_symbols = entry->series.symbols().size();
  std::vector<tsdb::FeatureSet> delta;
  delta.reserve(instants.size());
  for (const std::vector<std::string>& features : instants) {
    tsdb::FeatureSet instant;
    for (const std::string& feature : features) {
      instant.Set(entry->series.symbols().Intern(feature));
    }
    delta.push_back(std::move(instant));
  }
  const bool new_symbols = entry->series.symbols().size() > known_symbols;

  for (const tsdb::FeatureSet& instant : delta) {
    entry->series.Append(instant);
  }
  if (new_symbols) {
    PPM_RETURN_IF_ERROR(CompactLocked(name, entry.get()));
  } else {
    for (const tsdb::FeatureSet& instant : delta) {
      const Status appended = entry->wal->Append(instant);
      if (!appended.ok()) {
        // Memory is ahead of disk; refuse further writes until a
        // compaction reconciles them (reads still serve memory).
        entry->poisoned = true;
        return appended;
      }
    }
  }
  ++entry->version;
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.server.store.appended_instants")
      .Inc(delta.size());
  if (listener_) {
    Mutation mutation;
    mutation.kind = Mutation::Kind::kAppend;
    mutation.name = name;
    mutation.version = entry->version;
    mutation.length = entry->series.length();
    mutation.delta = &delta;
    listener_(mutation);
  }

  // Retention: an append that overflowed the cap drops the oldest instants
  // and compacts -- the truncated payload becomes the new baseline and the
  // tail WAL restarts after it, so recovery replays nothing stale. Its own
  // version bump + mutation keep snapshot consumers coherent.
  const uint64_t cap = options_.max_instants_per_series;
  if (cap > 0 && entry->series.length() > cap) {
    const uint64_t overflow = entry->series.length() - cap;
    entry->series.DropFront(overflow);
    PPM_RETURN_IF_ERROR(CompactLocked(name, entry.get()));
    ++entry->version;
    obs::MetricsRegistry::Global()
        .GetCounter("ppm.server.store.truncated_instants")
        .Inc(overflow);
    if (listener_) {
      Mutation mutation;
      mutation.kind = Mutation::Kind::kTruncate;
      mutation.name = name;
      mutation.version = entry->version;
      mutation.length = entry->series.length();
      listener_(mutation);
    }
  }
  return Status::OK();
}

Result<SeriesSnapshot> SeriesStore::Snapshot(const std::string& name) const {
  std::shared_ptr<Entry> entry = FindEntry(name, /*create=*/true);
  std::lock_guard<std::mutex> lock(entry->mu);
  PPM_RETURN_IF_ERROR(EnsureLoaded(name, entry.get()));
  SeriesSnapshot snapshot;
  snapshot.series = entry->series;
  snapshot.version = entry->version;
  return snapshot;
}

Result<std::pair<uint64_t, uint64_t>> SeriesStore::VersionAndLength(
    const std::string& name) const {
  std::shared_ptr<Entry> entry = FindEntry(name, /*create=*/true);
  std::lock_guard<std::mutex> lock(entry->mu);
  PPM_RETURN_IF_ERROR(EnsureLoaded(name, entry.get()));
  return std::make_pair(entry->version, entry->series.length());
}

Status SeriesStore::Drop(const std::string& name) {
  std::shared_ptr<Entry> entry = FindEntry(name, /*create=*/true);
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->dropped) return Status::NotFound("dropped series: " + name);
  {
    std::lock_guard<std::mutex> db_lock(db_mu_);
    PPM_RETURN_IF_ERROR(db_->Drop(name));
  }
  entry->wal.reset();
  std::error_code ec;
  fs::remove(WalPathFor(name), ec);  // Best effort; replay skips stale tails.
  entry->series = tsdb::TimeSeries();
  entry->loaded = true;
  entry->dropped = true;
  entry->wal_reuse = false;
  ++entry->version;
  if (listener_) {
    Mutation mutation;
    mutation.kind = Mutation::Kind::kDrop;
    mutation.name = name;
    mutation.version = entry->version;
    mutation.length = 0;
    listener_(mutation);
  }
  return Status::OK();
}

Status SeriesStore::Compact(const std::string& name) {
  std::shared_ptr<Entry> entry = FindEntry(name, /*create=*/true);
  std::lock_guard<std::mutex> lock(entry->mu);
  PPM_RETURN_IF_ERROR(EnsureLoaded(name, entry.get()));
  return CompactLocked(name, entry.get());
}

std::vector<std::string> SeriesStore::List() const {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  return db_->List();
}

bool SeriesStore::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  return db_->Contains(name);
}

}  // namespace ppm::service
