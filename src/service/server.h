#ifndef PPM_SERVICE_SERVER_H_
#define PPM_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/mine_service.h"
#include "service/wire.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppm::service {

struct ServerOptions {
  /// Unix-domain socket path the daemon listens on.
  std::string socket_path;
  /// Request-executing threads (mining, mutations). Connections are NOT
  /// pinned to workers: the poller owns every socket and only complete,
  /// admitted requests reach a worker.
  uint32_t num_workers = 4;
  /// Legacy global cap, kept as the `queue_capacity` default so existing
  /// `--max-inflight` deployments keep their admission ceiling.
  uint32_t max_inflight = 0;
  /// Bounded admission-queue capacity (admitted requests waiting for a
  /// worker). 0 derives from `max_inflight`, else 4x workers.
  uint64_t queue_capacity = 0;
  /// Slow-client defense: a partially received frame must complete, and a
  /// response write must finish, within this budget; past it the
  /// connection is closed (it cost one fd, never a worker). 0 = no limit.
  uint64_t io_timeout_ms = 10'000;
  /// Per-tenant admission quotas (`ParseTenantQuotas`); the `default`
  /// entry governs tenants without one, including v1 clients.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// The service layer's own configuration (budgets, fsync).
  MineServiceOptions service;
};

/// The `ppmd` daemon core: accepts PPMRPC1 connections on a unix socket and
/// serves them from a worker pool over one `MineService` (docs/SERVING.md).
///
/// Threading model (overload-safe by construction):
///
///   - One poller thread owns the listen socket and every connection fd
///     (non-blocking). It assembles frames incrementally, enforces the
///     per-connection io timeout, and answers health/ready probes,
///     shutdown, decode errors, and admission rejections inline -- so the
///     daemon stays observable and sheds load even with every worker busy.
///   - Complete requests pass through the `AdmissionController` (per-tenant
///     token buckets + in-flight caps, bounded queue, deadline-aware
///     shedding). Admitted requests join the worker queue with an absolute
///     deadline stamped at admission, so queue wait eats the mining budget.
///   - `num_workers` workers pop requests, execute them on `MineService`,
///     write the response (with the io timeout), and hand the connection
///     back to the poller for the next request.
///
/// Stop semantics (SIGTERM drain): `RequestStop()` is a single atomic store,
/// safe from a signal handler. The poller stops accepting, rejects new
/// frames as draining, and keeps probes answering; workers finish the
/// already-admitted queue -- in-flight mining is never cancelled by a drain
/// -- then exit. `Wait()` joins everything and removes the socket file.
class PatternServer {
 public:
  /// Opens the service at `root`, binds and listens on
  /// `options.socket_path`, and starts the poller + workers. A stale
  /// socket file from a SIGKILLed daemon (connect refused) is removed and
  /// rebound; a live daemon on the path fails with `kAlreadyExists`.
  static Result<std::unique_ptr<PatternServer>> Start(
      const std::string& root, const ServerOptions& options);

  ~PatternServer();

  PatternServer(const PatternServer&) = delete;
  PatternServer& operator=(const PatternServer&) = delete;

  /// Begins a graceful drain. Async-signal-safe; idempotent.
  void RequestStop() { stop_.Cancel(); }

  /// Blocks until the drain completes (call `RequestStop` first, or rely on
  /// a `shutdown` request from a client). Joins all threads.
  void Wait();

  MineService& service() { return *service_; }
  AdmissionController& admission() { return *admission_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  /// One connection, owned by the poller except while a worker executes
  /// its current request (`busy`).
  struct Conn {
    int fd = -1;
    /// Inbound bytes not yet consumed (partial magic / frames; may hold a
    /// pipelined next request while `busy`).
    std::string inbuf;
    /// Outbound bytes the poller still has to flush (greeting, inline
    /// responses); written on POLLOUT.
    std::string outbuf;
    size_t out_pos = 0;
    bool got_magic = false;
    bool busy = false;
    bool close_after_flush = false;
    /// Absolute ms deadlines for the current partial read / pending write;
    /// 0 = inactive. Enforced by the poller tick.
    uint64_t read_deadline_ms = 0;
    uint64_t write_deadline_ms = 0;
  };

  /// An admitted request on its way to a worker.
  struct Work {
    int fd = -1;
    wire::Request request;
    /// Absolute deadline computed at admission (0-deadline requests get a
    /// never-expiring one).
    Deadline deadline;
    bool has_deadline = false;
  };

  explicit PatternServer(const ServerOptions& options) : options_(options) {}

  void PollerLoop();
  void WorkerLoop();

  // Poller internals (poller thread only).
  void AcceptNew();
  void DrainReturns();
  bool ReadConn(Conn* conn);     // false = close
  bool ProcessInbuf(Conn* conn); // false = close (protocol violation)
  bool HandleFrame(Conn* conn, std::string_view payload);
  /// Queues an inline response on the connection and flushes what fits.
  /// Returns false when the connection should be closed (write error, or
  /// `close_after_flush` and the buffer drained) -- the caller closes.
  bool RespondInline(Conn* conn, const wire::Response& response,
                     uint8_t version);
  bool FlushConn(Conn* conn);    // false = close
  void CloseConn(int fd);
  void WakePoller();

  wire::Response Execute(const wire::Request& request, const Deadline& deadline,
                         bool has_deadline);
  std::string HealthJson() const;

  ServerOptions options_;
  std::unique_ptr<MineService> service_;
  std::unique_ptr<AdmissionController> admission_;
  int listen_fd_ = -1;
  /// Set once ListenOn bound our socket: a failed Start must never unlink
  /// a path it does not own (it may be a live daemon's socket).
  bool bound_socket_ = false;
  int wake_pipe_[2] = {-1, -1};

  CancelToken stop_;
  std::atomic<bool> poller_exit_{false};

  // Poller-owned; only the poller thread touches the map.
  std::map<int, Conn> conns_;

  // Worker queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;

  // Connections coming back from workers: (fd, keep-open).
  std::mutex returns_mu_;
  std::vector<std::pair<int, bool>> returns_;

  std::thread poller_thread_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
  std::mutex join_mu_;

  std::atomic<uint32_t> executing_{0};

  obs::Gauge inflight_gauge_;
  obs::Counter connections_;
  obs::Counter rejected_;
  obs::Counter io_timeouts_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_SERVER_H_
