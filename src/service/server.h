#ifndef PPM_SERVICE_SERVER_H_
#define PPM_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/mine_service.h"
#include "service/wire.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ppm::service {

struct ServerOptions {
  /// Unix-domain socket path the daemon listens on.
  std::string socket_path;
  /// Connection-serving threads.
  uint32_t num_workers = 4;
  /// Admission cap on concurrently executing requests; one past it is
  /// answered `kResourceExhausted` without being executed. 0 = 2x workers
  /// (effectively "never", since each worker drives one request at a time).
  uint32_t max_inflight = 0;
  /// The service layer's own configuration (budgets, fsync).
  MineServiceOptions service;
};

/// The `ppmd` daemon core: accepts PPMRPC1 connections on a unix socket and
/// serves them from a worker pool over one `MineService` (docs/SERVING.md).
///
/// Stop semantics (SIGTERM drain): `RequestStop()` is a single atomic store,
/// safe from a signal handler. The accept loop stops taking connections;
/// workers finish the request they are executing -- in-flight mining is never
/// cancelled by a drain -- answer it, and close. `Wait()` joins everything
/// and removes the socket file.
class PatternServer {
 public:
  /// Opens the service at `root`, binds and listens on
  /// `options.socket_path`, and starts the accept loop + workers.
  static Result<std::unique_ptr<PatternServer>> Start(
      const std::string& root, const ServerOptions& options);

  ~PatternServer();

  PatternServer(const PatternServer&) = delete;
  PatternServer& operator=(const PatternServer&) = delete;

  /// Begins a graceful drain. Async-signal-safe; idempotent.
  void RequestStop() { stop_.Cancel(); }

  /// Blocks until the drain completes (call `RequestStop` first, or rely on
  /// a `shutdown` request from a client). Joins all threads.
  void Wait();

  MineService& service() { return *service_; }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  explicit PatternServer(const ServerOptions& options) : options_(options) {}

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  wire::Response Execute(const wire::Request& request);

  ServerOptions options_;
  std::unique_ptr<MineService> service_;
  int listen_fd_ = -1;

  CancelToken stop_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
  std::mutex join_mu_;

  std::atomic<uint32_t> inflight_{0};

  obs::Gauge inflight_gauge_;
  obs::Counter connections_;
  obs::Counter rejected_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_SERVER_H_
