#include "service/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/crc32c.h"

namespace ppm::service::wire {

namespace {

// ---------------------------------------------------------------------------
// Payload encoding primitives.

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out->append(value.data(), value.size());
}

/// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* value) {
    PPM_RETURN_IF_ERROR(Need(1));
    *value = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status U32(uint32_t* value) {
    PPM_RETURN_IF_ERROR(Need(4));
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *value = out;
    return Status::OK();
  }

  Status U64(uint64_t* value) {
    PPM_RETURN_IF_ERROR(Need(8));
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *value = out;
    return Status::OK();
  }

  Status F64(double* value) {
    uint64_t bits = 0;
    PPM_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(value, &bits, sizeof(*value));
    return Status::OK();
  }

  Status String(std::string* value) {
    uint32_t length = 0;
    PPM_RETURN_IF_ERROR(U32(&length));
    PPM_RETURN_IF_ERROR(Need(length));
    value->assign(data_.data() + pos_, length);
    pos_ += length;
    return Status::OK();
  }

  bool Done() const { return pos_ == data_.size(); }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) {
    if (data_.size() - pos_ < n) {
      return Status::InvalidArgument("truncated PPMRPC1 payload");
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Series block: u32 nsymbols + names, u64 ninstants, per instant a u32
// feature count + sorted u32 ids (validated against nsymbols on decode).

void PutSeries(std::string* out, const tsdb::TimeSeries& series) {
  const auto& names = series.symbols().names();
  PutU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) PutString(out, name);
  PutU64(out, series.length());
  for (const tsdb::FeatureSet& instant : series.instants()) {
    PutU32(out, instant.Count());
    instant.ForEach([out](uint32_t id) { PutU32(out, id); });
  }
}

Status ReadSeries(Reader* reader, tsdb::TimeSeries* series) {
  uint32_t num_symbols = 0;
  PPM_RETURN_IF_ERROR(reader->U32(&num_symbols));
  std::string name;
  for (uint32_t i = 0; i < num_symbols; ++i) {
    PPM_RETURN_IF_ERROR(reader->String(&name));
    const tsdb::FeatureId id = series->symbols().Intern(name);
    if (id != i) {
      return Status::InvalidArgument("duplicate symbol in PPMRPC1 series: " +
                                     name);
    }
  }
  uint64_t num_instants = 0;
  PPM_RETURN_IF_ERROR(reader->U64(&num_instants));
  // 5 bytes is the smallest possible instant encoding; anything claiming
  // more instants than the remaining bytes allow is corrupt, not huge.
  if (num_instants > reader->remaining() / 4) {
    return Status::InvalidArgument("truncated PPMRPC1 payload");
  }
  for (uint64_t t = 0; t < num_instants; ++t) {
    uint32_t count = 0;
    PPM_RETURN_IF_ERROR(reader->U32(&count));
    tsdb::FeatureSet instant;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      PPM_RETURN_IF_ERROR(reader->U32(&id));
      if (id >= num_symbols) {
        return Status::InvalidArgument(
            "feature id out of range in PPMRPC1 series: " +
            std::to_string(id));
      }
      instant.Set(id);
    }
    series->Append(std::move(instant));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Request / Response payloads.

std::string ReadyStateName(uint8_t state) {
  switch (static_cast<ReadyState>(state)) {
    case ReadyState::kAccepting:
      return "accepting";
    case ReadyState::kDraining:
      return "draining";
    case ReadyState::kShedding:
      return "shedding";
  }
  return "unknown(" + std::to_string(state) + ")";
}

std::string EncodeRequest(const Request& request) {
  const bool needs_v2 = !request.tenant.empty() || request.op == Op::kHealth ||
                        request.op == Op::kReady;
  return EncodeRequest(request, needs_v2 ? 2 : 1);
}

std::string EncodeRequest(const Request& request, uint8_t version) {
  std::string out;
  if (version >= 2) PutU8(&out, kV2Marker);
  PutU8(&out, static_cast<uint8_t>(request.op));
  PutU32(&out, request.deadline_ms);
  if (version >= 2) PutString(&out, request.tenant);
  PutString(&out, request.name);
  switch (request.op) {
    case Op::kPut:
      PutSeries(&out, request.series);
      break;
    case Op::kAppend:
      PutU64(&out, request.instants.size());
      for (const std::vector<std::string>& instant : request.instants) {
        PutU32(&out, static_cast<uint32_t>(instant.size()));
        for (const std::string& feature : instant) PutString(&out, feature);
      }
      break;
    case Op::kMine:
    case Op::kQuery:
      PutU32(&out, request.period);
      PutF64(&out, request.min_confidence);
      PutU64(&out, request.min_count);
      PutU32(&out, request.max_letters);
      PutU8(&out, request.algorithm);
      break;
    case Op::kGet:
    case Op::kStats:
    case Op::kShutdown:
    case Op::kHealth:
    case Op::kReady:
      break;
  }
  return out;
}

Result<Request> DecodeRequest(std::string_view payload) {
  Reader reader(payload);
  Request request;
  uint8_t op = 0;
  PPM_RETURN_IF_ERROR(reader.U8(&op));
  if (op == kV2Marker) {
    request.wire_version = 2;
    PPM_RETURN_IF_ERROR(reader.U8(&op));
  }
  const uint8_t max_op = request.wire_version >= 2
                             ? static_cast<uint8_t>(Op::kReady)
                             : static_cast<uint8_t>(Op::kShutdown);
  if (op < static_cast<uint8_t>(Op::kPut) || op > max_op) {
    return Status::InvalidArgument("unknown PPMRPC1 op: " + std::to_string(op));
  }
  request.op = static_cast<Op>(op);
  PPM_RETURN_IF_ERROR(reader.U32(&request.deadline_ms));
  if (request.wire_version >= 2) {
    PPM_RETURN_IF_ERROR(reader.String(&request.tenant));
  }
  PPM_RETURN_IF_ERROR(reader.String(&request.name));
  switch (request.op) {
    case Op::kPut:
      PPM_RETURN_IF_ERROR(ReadSeries(&reader, &request.series));
      break;
    case Op::kAppend: {
      uint64_t num_instants = 0;
      PPM_RETURN_IF_ERROR(reader.U64(&num_instants));
      if (num_instants > reader.remaining() / 4) {
        return Status::InvalidArgument("truncated PPMRPC1 payload");
      }
      request.instants.reserve(num_instants);
      for (uint64_t t = 0; t < num_instants; ++t) {
        uint32_t count = 0;
        PPM_RETURN_IF_ERROR(reader.U32(&count));
        std::vector<std::string> instant;
        instant.reserve(count < 64 ? count : 64);
        for (uint32_t i = 0; i < count; ++i) {
          std::string feature;
          PPM_RETURN_IF_ERROR(reader.String(&feature));
          instant.push_back(std::move(feature));
        }
        request.instants.push_back(std::move(instant));
      }
      break;
    }
    case Op::kMine:
    case Op::kQuery:
      PPM_RETURN_IF_ERROR(reader.U32(&request.period));
      PPM_RETURN_IF_ERROR(reader.F64(&request.min_confidence));
      PPM_RETURN_IF_ERROR(reader.U64(&request.min_count));
      PPM_RETURN_IF_ERROR(reader.U32(&request.max_letters));
      PPM_RETURN_IF_ERROR(reader.U8(&request.algorithm));
      break;
    case Op::kGet:
    case Op::kStats:
    case Op::kShutdown:
    case Op::kHealth:
    case Op::kReady:
      break;
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes in PPMRPC1 request");
  }
  return request;
}

std::string EncodeResponse(const Response& response) {
  return EncodeResponse(response, 1);
}

std::string EncodeResponse(const Response& response, uint8_t version) {
  std::string out;
  if (version >= 2) PutU8(&out, kV2Marker);
  PutU8(&out, response.code);
  PutString(&out, response.message);
  PutU8(&out, response.cache_outcome);
  PutU64(&out, response.version);
  PutU64(&out, response.length);
  PutU64(&out, response.num_periods);
  PutU32(&out, response.period);
  PutU32(&out, static_cast<uint32_t>(response.symbols.size()));
  for (const std::string& symbol : response.symbols) PutString(&out, symbol);
  PutU64(&out, response.patterns.size());
  for (const WirePattern& pattern : response.patterns) {
    PutU32(&out, static_cast<uint32_t>(pattern.letters.size()));
    for (const auto& [position, feature] : pattern.letters) {
      PutU32(&out, position);
      PutU32(&out, feature);
    }
    PutU64(&out, pattern.count);
    PutF64(&out, pattern.confidence);
  }
  PutU8(&out, response.has_series ? 1 : 0);
  if (response.has_series) PutSeries(&out, response.series);
  PutString(&out, response.stats_json);
  PutString(&out, response.metrics_prom);
  if (version >= 2) {
    PutU32(&out, response.retry_after_ms);
    PutU8(&out, response.ready_state);
    PutString(&out, response.health_json);
  }
  return out;
}

Result<Response> DecodeResponse(std::string_view payload) {
  Reader reader(payload);
  Response response;
  uint8_t version = 1;
  PPM_RETURN_IF_ERROR(reader.U8(&response.code));
  if (response.code == kV2Marker) {
    version = 2;
    PPM_RETURN_IF_ERROR(reader.U8(&response.code));
  }
  PPM_RETURN_IF_ERROR(reader.String(&response.message));
  PPM_RETURN_IF_ERROR(reader.U8(&response.cache_outcome));
  PPM_RETURN_IF_ERROR(reader.U64(&response.version));
  PPM_RETURN_IF_ERROR(reader.U64(&response.length));
  PPM_RETURN_IF_ERROR(reader.U64(&response.num_periods));
  PPM_RETURN_IF_ERROR(reader.U32(&response.period));
  uint32_t num_symbols = 0;
  PPM_RETURN_IF_ERROR(reader.U32(&num_symbols));
  if (num_symbols > reader.remaining() / 4) {
    return Status::InvalidArgument("truncated PPMRPC1 payload");
  }
  response.symbols.reserve(num_symbols);
  for (uint32_t i = 0; i < num_symbols; ++i) {
    std::string symbol;
    PPM_RETURN_IF_ERROR(reader.String(&symbol));
    response.symbols.push_back(std::move(symbol));
  }
  uint64_t num_patterns = 0;
  PPM_RETURN_IF_ERROR(reader.U64(&num_patterns));
  if (num_patterns > reader.remaining() / 4) {
    return Status::InvalidArgument("truncated PPMRPC1 payload");
  }
  response.patterns.reserve(num_patterns);
  for (uint64_t i = 0; i < num_patterns; ++i) {
    WirePattern pattern;
    uint32_t num_letters = 0;
    PPM_RETURN_IF_ERROR(reader.U32(&num_letters));
    if (num_letters > reader.remaining() / 8) {
      return Status::InvalidArgument("truncated PPMRPC1 payload");
    }
    pattern.letters.reserve(num_letters);
    for (uint32_t j = 0; j < num_letters; ++j) {
      uint32_t position = 0;
      uint32_t feature = 0;
      PPM_RETURN_IF_ERROR(reader.U32(&position));
      PPM_RETURN_IF_ERROR(reader.U32(&feature));
      if (position >= response.period && response.period != 0) {
        return Status::InvalidArgument(
            "letter position out of range in PPMRPC1 response");
      }
      pattern.letters.emplace_back(position, feature);
    }
    PPM_RETURN_IF_ERROR(reader.U64(&pattern.count));
    PPM_RETURN_IF_ERROR(reader.F64(&pattern.confidence));
    response.patterns.push_back(std::move(pattern));
  }
  uint8_t has_series = 0;
  PPM_RETURN_IF_ERROR(reader.U8(&has_series));
  response.has_series = has_series != 0;
  if (response.has_series) {
    PPM_RETURN_IF_ERROR(ReadSeries(&reader, &response.series));
  }
  PPM_RETURN_IF_ERROR(reader.String(&response.stats_json));
  PPM_RETURN_IF_ERROR(reader.String(&response.metrics_prom));
  if (version >= 2) {
    PPM_RETURN_IF_ERROR(reader.U32(&response.retry_after_ms));
    PPM_RETURN_IF_ERROR(reader.U8(&response.ready_state));
    PPM_RETURN_IF_ERROR(reader.String(&response.health_json));
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("trailing bytes in PPMRPC1 response");
  }
  return response;
}

// ---------------------------------------------------------------------------
// Frame I/O.

namespace {

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Writes exactly `n` bytes. Sends are issued with MSG_DONTWAIT so the same
/// path serves blocking and non-blocking fds: on a full socket buffer we
/// poll for writability -- forever when `timeout_ms` is 0, else until the
/// overall budget is spent, at which point the peer is declared slow and the
/// write fails with `kIoError` ("timed out") instead of pinning the caller.
Status WriteAll(int fd, const void* data, size_t n, uint64_t timeout_ms) {
  const char* p = static_cast<const char*>(data);
  const uint64_t start = SteadyNowMs();
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not process death.
    const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (written > 0) {
      p += written;
      n -= static_cast<size_t>(written);
      continue;
    }
    if (written < 0 && errno == EINTR) continue;
    if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (timeout_ms > 0) {
        const uint64_t elapsed = SteadyNowMs() - start;
        if (elapsed >= timeout_ms) {
          return Status::IoError("socket write timed out");
        }
        wait_ms = static_cast<int>(timeout_ms - elapsed);
      }
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0 && errno != EINTR) {
        return Status::IoError(std::string("socket poll failed: ") +
                               std::strerror(errno));
      }
      continue;
    }
    return Status::IoError(std::string("socket write failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// Reads exactly `n` bytes; polls in 50 ms ticks so `should_stop` can abort.
/// `*eof` is set when the peer closed cleanly before the first byte.
Status ReadAll(int fd, void* data, size_t n,
               const std::function<bool()>& should_stop, bool* eof) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < n) {
    if (should_stop && should_stop()) {
      return Status::Cancelled("server stopping");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket poll failed: ") +
                             std::strerror(errno));
    }
    if (ready == 0) continue;
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof != nullptr) {
        *eof = true;
        return Status::NotFound("connection closed");
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteMagic(int fd) {
  return WriteAll(fd, kMagic, sizeof(kMagic), /*timeout_ms=*/0);
}

Status ExpectMagic(int fd) {
  char magic[sizeof(kMagic)];
  bool eof = false;
  PPM_RETURN_IF_ERROR(ReadAll(fd, magic, sizeof(magic), {}, &eof));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad PPMRPC1 magic");
  }
  return Status::OK();
}

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, crc32c::Value(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

Status WriteFrame(int fd, std::string_view payload, uint64_t timeout_ms) {
  if (payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("PPMRPC1 frame too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  const std::string frame = EncodeFrame(payload);
  return WriteAll(fd, frame.data(), frame.size(), timeout_ms);
}

Result<std::string> ReadFrame(int fd,
                              const std::function<bool()>& should_stop) {
  uint8_t header[8];
  bool eof = false;
  PPM_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header), should_stop, &eof));
  uint32_t length = 0;
  uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(header[i]) << (8 * i);
    crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
  }
  if (length > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("PPMRPC1 frame too large: " +
                                   std::to_string(length) + " bytes");
  }
  std::string payload(length, '\0');
  PPM_RETURN_IF_ERROR(
      ReadAll(fd, payload.data(), payload.size(), should_stop, nullptr));
  if (crc32c::Value(payload.data(), payload.size()) != crc) {
    return Status::Corruption("PPMRPC1 frame checksum mismatch");
  }
  return payload;
}

}  // namespace ppm::service::wire
