#include "service/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"

namespace ppm::service {

namespace {

/// Tracked tenant states are capped so an adversary cycling through fresh
/// tenant names cannot grow the map without bound; everyone past the cap
/// shares one overflow bucket (and thus one default quota).
constexpr size_t kMaxTrackedTenants = 256;
constexpr char kOverflowTenant[] = "!overflow";
constexpr char kDefaultTenant[] = "default";

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Result<double> ParseNonNegative(const std::string& text,
                                const std::string& what) {
  try {
    size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size() || value < 0.0 || !std::isfinite(value)) {
      return Status::InvalidArgument("bad " + what + ": " + text);
    }
    return value;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad " + what + ": " + text);
  }
}

void AppendJsonString(std::ostringstream* out, std::string_view value) {
  *out << '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      *out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out << ' ';
    } else {
      *out << c;
    }
  }
  *out << '"';
}

}  // namespace

Result<std::map<std::string, TenantQuota>> ParseTenantQuotas(
    std::string_view spec) {
  std::map<std::string, TenantQuota> quotas;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string entry(spec.substr(start, end - start));
    start = end + 1;
    if (entry.empty()) {
      if (spec.empty()) break;
      return Status::InvalidArgument("empty entry in --tenant-quota");
    }
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "bad --tenant-quota entry (want tenant=rps:burst:inflight): " +
          entry);
    }
    const std::string tenant = entry.substr(0, eq);
    const std::string values = entry.substr(eq + 1);
    const size_t c1 = values.find(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : values.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        values.find(':', c2 + 1) != std::string::npos) {
      return Status::InvalidArgument(
          "bad --tenant-quota entry (want tenant=rps:burst:inflight): " +
          entry);
    }
    TenantQuota quota;
    PPM_ASSIGN_OR_RETURN(quota.rps, ParseNonNegative(values.substr(0, c1),
                                                     "rps for " + tenant));
    PPM_ASSIGN_OR_RETURN(
        quota.burst,
        ParseNonNegative(values.substr(c1 + 1, c2 - c1 - 1),
                         "burst for " + tenant));
    PPM_ASSIGN_OR_RETURN(const double inflight,
                         ParseNonNegative(values.substr(c2 + 1),
                                          "inflight for " + tenant));
    if (inflight != std::floor(inflight)) {
      return Status::InvalidArgument("bad inflight for " + tenant + ": " +
                                     values.substr(c2 + 1));
    }
    quota.max_inflight = static_cast<uint64_t>(inflight);
    if (quota.rps > 0.0 && quota.burst <= 0.0) {
      // A rate without capacity would reject everything; a bucket of one
      // request is the least surprising floor.
      quota.burst = 1.0;
    }
    if (!quotas.emplace(tenant, quota).second) {
      return Status::InvalidArgument("duplicate tenant in --tenant-quota: " +
                                     tenant);
    }
  }
  return quotas;
}

AdmissionController::AdmissionController(Options options)
    : options_(std::move(options)),
      shed_watermark_(options_.shed_watermark > 0
                          ? options_.shed_watermark
                          : std::max<uint64_t>(
                                1, options_.queue_capacity * 3 / 4)) {
  const auto it = options_.quotas.find(kDefaultTenant);
  if (it != options_.quotas.end()) default_quota_ = it->second;
}

std::map<std::string, AdmissionController::TenantState>::iterator
AdmissionController::StateFor(const std::string& tenant) {
  const std::string& name = tenant.empty() ? kDefaultTenant : tenant;
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it;
  if (tenants_.size() >= kMaxTrackedTenants &&
      options_.quotas.find(name) == options_.quotas.end()) {
    it = tenants_.find(kOverflowTenant);
    if (it != tenants_.end()) return it;
    it = tenants_.emplace(kOverflowTenant, TenantState{}).first;
    it->second.quota = default_quota_;
    it->second.tokens = default_quota_.burst;
    it->second.last_refill_ms =
        options_.now_ms ? options_.now_ms() : SteadyNowMs();
    return it;
  }
  TenantState state;
  const auto quota_it = options_.quotas.find(name);
  if (quota_it != options_.quotas.end()) {
    state.quota = quota_it->second;
    state.has_quota = true;
  } else {
    state.quota = default_quota_;
  }
  state.tokens = state.quota.burst;
  state.last_refill_ms = options_.now_ms ? options_.now_ms() : SteadyNowMs();
  return tenants_.emplace(name, std::move(state)).first;
}

uint64_t AdmissionController::EstimatedQueueWaitMsLocked() const {
  if (queue_depth_ == 0 || !has_exec_sample_) return 0;
  const uint64_t workers = std::max<uint64_t>(1, options_.num_workers);
  // A free worker picks the next request up immediately.
  if (queue_depth_ + executing_ < workers) return 0;
  return static_cast<uint64_t>(
      std::ceil(static_cast<double>(queue_depth_) * exec_ema_ms_ /
                static_cast<double>(workers)));
}

AdmissionDecision AdmissionController::Admit(const std::string& tenant,
                                             uint32_t deadline_ms) {
  auto admitted_counter =
      obs::MetricsRegistry::Global().GetCounter("ppm.server.admission.admitted");
  auto rejected_counter =
      obs::MetricsRegistry::Global().GetCounter("ppm.server.admission.rejected");

  std::lock_guard<std::mutex> lock(mu_);
  const auto entry = StateFor(tenant);
  TenantState* state = &entry->second;
  // Canonical tracked name: capped-cardinality, so metric names are too.
  const std::string& display = entry->first;
  const uint64_t now = options_.now_ms ? options_.now_ms() : SteadyNowMs();

  AdmissionDecision decision;
  decision.queue_depth = queue_depth_;

  const auto reject = [&](std::string reason, uint32_t retry_after_ms) {
    decision.admitted = false;
    decision.reason = std::move(reason);
    decision.retry_after_ms = retry_after_ms;
    state->rejected_total += 1;
    rejected_counter.Inc();
    obs::MetricsRegistry::Global()
        .GetCounter("ppm.server.tenant." + display + ".rejected")
        .Inc();
    return decision;
  };

  if (draining_) {
    return reject("server draining", 0);
  }

  if (queue_depth_ >= options_.queue_capacity) {
    return reject("admission queue full",
                  static_cast<uint32_t>(std::max<uint64_t>(
                      1, EstimatedQueueWaitMsLocked())));
  }

  // Token bucket: refill at `rps`, capped at `burst`. rps == 0 disables
  // rate limiting for the tenant.
  if (state->quota.rps > 0.0) {
    const uint64_t elapsed = now - state->last_refill_ms;
    state->tokens =
        std::min(state->quota.burst,
                 state->tokens + state->quota.rps *
                                     (static_cast<double>(elapsed) / 1000.0));
    state->last_refill_ms = now;
    if (state->tokens < 1.0) {
      const double deficit = 1.0 - state->tokens;
      const uint32_t retry_after = static_cast<uint32_t>(
          std::ceil(deficit * 1000.0 / state->quota.rps));
      return reject("tenant '" + display + "' over rate quota",
                    std::max<uint32_t>(1, retry_after));
    }
    state->tokens -= 1.0;
  }

  if (state->quota.max_inflight > 0 &&
      state->inflight >= state->quota.max_inflight) {
    return reject("tenant '" + display + "' over in-flight quota", 0);
  }

  // Deadline feasibility: if the queue wait alone would exhaust the
  // request's budget, shed now so the client can retry elsewhere instead
  // of queueing doomed work.
  const uint64_t est_wait = EstimatedQueueWaitMsLocked();
  if (deadline_ms > 0 && est_wait >= deadline_ms) {
    return reject("deadline would expire in queue (estimated wait " +
                      std::to_string(est_wait) + " ms)",
                  static_cast<uint32_t>(std::max<uint64_t>(1, est_wait)));
  }

  state->inflight += 1;
  state->admitted_total += 1;
  queue_depth_ += 1;
  decision.admitted = true;
  decision.queue_depth = queue_depth_;
  admitted_counter.Inc();
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.server.tenant." + display + ".admitted")
      .Inc();
  obs::MetricsRegistry::Global()
      .GetGauge("ppm.server.admission.queue_depth")
      .Set(static_cast<int64_t>(queue_depth_));
  return decision;
}

void AdmissionController::OnDequeued() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_depth_ > 0) queue_depth_ -= 1;
  executing_ += 1;
  obs::MetricsRegistry::Global()
      .GetGauge("ppm.server.admission.queue_depth")
      .Set(static_cast<int64_t>(queue_depth_));
}

void AdmissionController::OnExecuted(uint64_t exec_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (executing_ > 0) executing_ -= 1;
  if (!has_exec_sample_) {
    exec_ema_ms_ = static_cast<double>(exec_ms);
    has_exec_sample_ = true;
  } else {
    exec_ema_ms_ = 0.8 * exec_ema_ms_ + 0.2 * static_cast<double>(exec_ms);
  }
}

void AdmissionController::OnCompleted(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = StateFor(tenant)->second;
  if (state.inflight > 0) state.inflight -= 1;
}

void AdmissionController::StartDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

wire::ReadyState AdmissionController::ReadyStateLocked() const {
  if (draining_) return wire::ReadyState::kDraining;
  if (queue_depth_ >= shed_watermark_) return wire::ReadyState::kShedding;
  if (options_.cache_pressure && options_.cache_pressure() >= 0.95) {
    return wire::ReadyState::kShedding;
  }
  return wire::ReadyState::kAccepting;
}

wire::ReadyState AdmissionController::ready_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadyStateLocked();
}

uint64_t AdmissionController::EstimatedQueueWaitMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EstimatedQueueWaitMsLocked();
}

uint64_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_depth_;
}

std::string AdmissionController::HealthJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const wire::ReadyState state = ReadyStateLocked();
  const char* state_name = state == wire::ReadyState::kAccepting ? "accepting"
                           : state == wire::ReadyState::kDraining
                               ? "draining"
                               : "shedding";
  std::ostringstream out;
  out << "{\"ready_state\":\"" << state_name << '"';
  out << ",\"queue_depth\":" << queue_depth_;
  out << ",\"executing\":" << executing_;
  out << ",\"queue_capacity\":" << options_.queue_capacity;
  out << ",\"shed_watermark\":" << shed_watermark_;
  out << ",\"estimated_queue_wait_ms\":" << EstimatedQueueWaitMsLocked();
  out << ",\"exec_ema_ms\":" << (has_exec_sample_ ? exec_ema_ms_ : 0.0);
  if (options_.cache_pressure) {
    out << ",\"cache_pressure\":" << options_.cache_pressure();
  }
  out << ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, tenant] : tenants_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ":{\"inflight\":" << tenant.inflight
        << ",\"admitted\":" << tenant.admitted_total
        << ",\"rejected\":" << tenant.rejected_total
        << ",\"has_quota\":" << (tenant.has_quota ? "true" : "false") << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace ppm::service
