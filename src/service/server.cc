#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/crc32c.h"
#include "util/log.h"

namespace ppm::service {

namespace {

uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl(O_NONBLOCK) failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<int> ListenOn(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // Stale-socket handling: a SIGKILLed daemon leaves its socket file
  // behind. Probe before touching anything -- a live daemon accepts the
  // connect and we must NOT steal its socket; a dead one refuses, and only
  // then is the file safe to remove. Anything that isn't a socket at all
  // is someone else's file: fail instead of deleting it.
  struct stat st = {};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::InvalidArgument("socket path " + path +
                                     " exists and is not a socket");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) {
      return Status::IoError(std::string("socket() failed: ") +
                             std::strerror(errno));
    }
    if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      ::close(probe);
      return Status::AlreadyExists("ppmd already running on " + path);
    }
    const int err = errno;
    ::close(probe);
    if (err != ECONNREFUSED && err != ENOENT) {
      return Status::IoError("probe connect(" + path +
                             ") failed: " + std::strerror(err));
    }
    if (err == ECONNREFUSED) {
      PPM_LOG(kWarn) << "removing stale ppmd socket " << path;
      ::unlink(path.c_str());
    }
  } else if (errno != ENOENT) {
    return Status::IoError("lstat(" + path +
                           ") failed: " + std::strerror(errno));
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind(" + path +
                           ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError("listen(" + path +
                           ") failed: " + std::strerror(err));
  }
  PPM_RETURN_IF_ERROR(SetNonBlocking(fd));
  return fd;
}

}  // namespace

Result<std::unique_ptr<PatternServer>> PatternServer::Start(
    const std::string& root, const ServerOptions& options) {
  std::unique_ptr<PatternServer> server(new PatternServer(options));
  if (server->options_.num_workers == 0) server->options_.num_workers = 1;
  if (server->options_.max_inflight == 0) {
    server->options_.max_inflight = 2 * server->options_.num_workers;
  }
  if (server->options_.queue_capacity == 0) {
    server->options_.queue_capacity = server->options_.max_inflight;
  }
  PPM_ASSIGN_OR_RETURN(server->service_,
                       MineService::Open(root, options.service));

  AdmissionController::Options admission;
  admission.quotas = server->options_.tenant_quotas;
  admission.queue_capacity = server->options_.queue_capacity;
  admission.num_workers = server->options_.num_workers;
  admission.cache_pressure = [service = server->service_.get()] {
    return service->CachePressure();
  };
  server->admission_ =
      std::make_unique<AdmissionController>(std::move(admission));

  PPM_ASSIGN_OR_RETURN(server->listen_fd_, ListenOn(options.socket_path));
  server->bound_socket_ = true;
  if (::pipe(server->wake_pipe_) < 0) {
    return Status::IoError(std::string("pipe() failed: ") +
                           std::strerror(errno));
  }
  PPM_RETURN_IF_ERROR(SetNonBlocking(server->wake_pipe_[0]));
  PPM_RETURN_IF_ERROR(SetNonBlocking(server->wake_pipe_[1]));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  server->inflight_gauge_ = registry.GetGauge("ppm.server.inflight");
  server->connections_ = registry.GetCounter("ppm.server.connections");
  server->rejected_ = registry.GetCounter("ppm.server.rejected");
  server->io_timeouts_ = registry.GetCounter("ppm.server.io_timeouts");

  server->poller_thread_ = std::thread([s = server.get()] { s->PollerLoop(); });
  server->workers_.reserve(server->options_.num_workers);
  for (uint32_t i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  PPM_LOG(kInfo) << "ppmd listening on " << options.socket_path << " ("
                 << server->options_.num_workers << " workers, queue "
                 << server->options_.queue_capacity << ")";
  return server;
}

PatternServer::~PatternServer() {
  RequestStop();
  Wait();
}

void PatternServer::Wait() {
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  // Workers exit once the drain flag is up and the admitted queue is empty
  // (RequestStop is a precondition -- the destructor and ppmd both set it).
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // All connections are back with the poller now; let it flush pending
  // inline responses (bounded by the io deadline) and exit.
  poller_exit_.store(true);
  WakePoller();
  if (poller_thread_.joinable()) poller_thread_.join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(returns_mu_);
    returns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (bound_socket_) ::unlink(options_.socket_path.c_str());
  joined_ = true;
}

void PatternServer::WakePoller() {
  const char byte = 0;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t ignored =
      ::write(wake_pipe_[1], &byte, 1);
}

// ---------------------------------------------------------------------------
// Poller: owns every connection; workers only ever see admitted requests.

void PatternServer::PollerLoop() {
  bool drain_announced = false;
  std::vector<struct pollfd> pfds;
  std::vector<int> pfd_conns;
  while (true) {
    const bool stopping = stop_.cancelled();
    if (stopping && !drain_announced) {
      admission_->StartDrain();
      drain_announced = true;
    }
    DrainReturns();
    if (poller_exit_.load()) {
      bool flushing = false;
      for (const auto& [fd, conn] : conns_) {
        if (!conn.busy && conn.out_pos < conn.outbuf.size()) {
          flushing = true;
          break;
        }
      }
      if (!flushing) return;
    }

    pfds.clear();
    pfd_conns.clear();
    if (!stopping && !poller_exit_.load()) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conns.push_back(-1);
    }
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfd_conns.push_back(-2);
    for (const auto& [fd, conn] : conns_) {
      if (conn.busy) continue;
      short events = POLLIN;
      if (conn.out_pos < conn.outbuf.size()) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
      pfd_conns.push_back(fd);
    }

    const int ready = ::poll(pfds.data(), pfds.size(), 50);
    if (ready < 0 && errno != EINTR) {
      PPM_LOG(kError) << "ppmd poll failed: " << std::strerror(errno);
      return;
    }

    for (size_t i = 0; i < pfds.size() && ready > 0; ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfd_conns[i] == -1) {
        AcceptNew();
        continue;
      }
      if (pfd_conns[i] == -2) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      const auto it = conns_.find(pfd_conns[i]);
      if (it == conns_.end() || it->second.busy) continue;
      Conn* conn = &it->second;
      bool keep = true;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) keep = false;
      if (keep && (pfds[i].revents & POLLOUT)) keep = FlushConn(conn);
      if (keep && (pfds[i].revents & (POLLIN | POLLHUP))) {
        keep = ReadConn(conn);
      }
      if (!keep) CloseConn(pfd_conns[i]);
    }

    // Slow-client defense: a frame that stalls mid-read, or a response the
    // peer will not drain, is cut off at the io deadline.
    if (options_.io_timeout_ms > 0) {
      const uint64_t now = SteadyNowMs();
      std::vector<int> expired;
      for (const auto& [fd, conn] : conns_) {
        if (conn.busy) continue;
        if ((conn.read_deadline_ms != 0 && now >= conn.read_deadline_ms) ||
            (conn.write_deadline_ms != 0 && now >= conn.write_deadline_ms)) {
          expired.push_back(fd);
        }
      }
      for (const int fd : expired) {
        io_timeouts_.Inc();
        PPM_LOG(kWarn) << "ppmd closing slow connection (io timeout)";
        CloseConn(fd);
      }
    }
  }
}

void PatternServer::AcceptNew() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        return;
      }
      PPM_LOG(kError) << "ppmd accept failed: " << std::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    connections_.Inc();
    Conn conn;
    conn.fd = fd;
    // Greet eagerly; flushed by POLLOUT if the 8 bytes do not fit at once.
    conn.outbuf.assign(wire::kMagic, sizeof(wire::kMagic));
    Conn* inserted = &conns_.emplace(fd, std::move(conn)).first->second;
    if (!FlushConn(inserted)) CloseConn(fd);
  }
}

void PatternServer::DrainReturns() {
  std::vector<std::pair<int, bool>> returned;
  {
    std::lock_guard<std::mutex> lock(returns_mu_);
    returned.swap(returns_);
  }
  for (const auto& [fd, keep] : returned) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = &it->second;
    conn->busy = false;
    if (!keep || conn->close_after_flush) {
      CloseConn(fd);
      continue;
    }
    // A pipelined next request may already be buffered.
    if (!ProcessInbuf(conn)) CloseConn(fd);
  }
}

bool PatternServer::ReadConn(Conn* conn) {
  char buf[4096];
  while (true) {
    const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(r));
      if (conn->inbuf.size() >
          static_cast<size_t>(wire::kMaxFramePayloadBytes) + 64) {
        return false;  // A frame may not legally be this large.
      }
      continue;
    }
    if (r == 0) return false;  // Peer closed.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  return ProcessInbuf(conn);
}

bool PatternServer::ProcessInbuf(Conn* conn) {
  while (!conn->busy) {
    if (!conn->got_magic) {
      if (conn->inbuf.size() < sizeof(wire::kMagic)) break;
      if (std::memcmp(conn->inbuf.data(), wire::kMagic,
                      sizeof(wire::kMagic)) != 0) {
        return false;  // Not a PPMRPC1 peer.
      }
      conn->inbuf.erase(0, sizeof(wire::kMagic));
      conn->got_magic = true;
      continue;
    }
    if (conn->inbuf.size() < 8) break;
    uint32_t length = 0;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<uint32_t>(
                    static_cast<uint8_t>(conn->inbuf[i]))
                << (8 * i);
      crc |= static_cast<uint32_t>(
                 static_cast<uint8_t>(conn->inbuf[4 + i]))
             << (8 * i);
    }
    if (length > wire::kMaxFramePayloadBytes) {
      PPM_LOG(kWarn) << "ppmd dropping connection: oversized frame ("
                     << length << " bytes)";
      return false;
    }
    if (conn->inbuf.size() < 8 + static_cast<size_t>(length)) break;
    const std::string payload = conn->inbuf.substr(8, length);
    conn->inbuf.erase(0, 8 + static_cast<size_t>(length));
    if (crc32c::Value(payload.data(), payload.size()) != crc) {
      PPM_LOG(kWarn) << "ppmd dropping connection: frame checksum mismatch";
      return false;
    }
    if (!HandleFrame(conn, payload)) return false;
  }
  // Arm the io deadline while a partial magic/frame is pending; disarm
  // once the buffer drained (an idle connection costs one fd, nothing
  // else, and may sit forever).
  if (options_.io_timeout_ms > 0) {
    if (conn->inbuf.empty() || conn->busy) {
      conn->read_deadline_ms = 0;
    } else if (conn->read_deadline_ms == 0) {
      conn->read_deadline_ms = SteadyNowMs() + options_.io_timeout_ms;
    }
  }
  return true;
}

bool PatternServer::HandleFrame(Conn* conn, std::string_view payload) {
  Result<wire::Request> request = wire::DecodeRequest(payload);
  if (!request.ok()) {
    wire::Response response;
    response.code = static_cast<uint8_t>(request.status().code());
    response.message = request.status().message();
    const uint8_t version =
        (!payload.empty() &&
         static_cast<uint8_t>(payload[0]) == wire::kV2Marker)
            ? 2
            : 1;
    return RespondInline(conn, response, version);
  }
  const uint8_t version = request->wire_version;
  switch (request->op) {
    case wire::Op::kHealth: {
      // Liveness must survive overload: answered here, never queued.
      wire::Response response;
      response.health_json = admission_->HealthJson();
      return RespondInline(conn, response, version);
    }
    case wire::Op::kReady: {
      const wire::ReadyState state = admission_->ready_state();
      wire::Response response;
      if (state != wire::ReadyState::kAccepting) {
        response.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
        response.message = state == wire::ReadyState::kDraining
                               ? "draining"
                               : "shedding";
      }
      response.health_json = admission_->HealthJson();
      return RespondInline(conn, response, version);
    }
    case wire::Op::kShutdown: {
      PPM_LOG(kInfo) << "ppmd shutdown requested over socket";
      wire::Response response;
      conn->close_after_flush = true;
      RequestStop();
      return RespondInline(conn, response, version);
    }
    default:
      break;
  }

  const AdmissionDecision decision =
      admission_->Admit(request->tenant, request->deadline_ms);
  if (!decision.admitted) {
    rejected_.Inc();
    wire::Response response;
    response.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
    response.message = decision.reason;
    response.retry_after_ms = decision.retry_after_ms;
    return RespondInline(conn, response, version);
  }

  Work work;
  work.fd = conn->fd;
  work.has_deadline = request->deadline_ms != 0;
  if (work.has_deadline) {
    // Absolute from this moment: queue wait consumes the budget.
    work.deadline = Deadline::After(request->deadline_ms);
  }
  work.request = std::move(*request);
  conn->busy = true;
  conn->read_deadline_ms = 0;
  conn->write_deadline_ms = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(work));
  }
  queue_cv_.notify_one();
  return true;
}

bool PatternServer::RespondInline(Conn* conn, const wire::Response& response,
                                  uint8_t version) {
  wire::Response stamped = response;
  stamped.ready_state = static_cast<uint8_t>(admission_->ready_state());
  conn->outbuf.append(
      wire::EncodeFrame(wire::EncodeResponse(stamped, version)));
  return FlushConn(conn);
}

bool PatternServer::FlushConn(Conn* conn) {
  while (conn->out_pos < conn->outbuf.size()) {
    const ssize_t written =
        ::send(conn->fd, conn->outbuf.data() + conn->out_pos,
               conn->outbuf.size() - conn->out_pos,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (written > 0) {
      conn->out_pos += static_cast<size_t>(written);
      continue;
    }
    if (written < 0 && errno == EINTR) continue;
    if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (options_.io_timeout_ms > 0 && conn->write_deadline_ms == 0) {
        conn->write_deadline_ms = SteadyNowMs() + options_.io_timeout_ms;
      }
      return true;  // POLLOUT will resume the flush.
    }
    return false;
  }
  conn->outbuf.clear();
  conn->out_pos = 0;
  conn->write_deadline_ms = 0;
  return !conn->close_after_flush;
}

void PatternServer::CloseConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::close(fd);
  conns_.erase(it);
}

// ---------------------------------------------------------------------------
// Workers: execute admitted requests, write the response, hand the
// connection back.

void PatternServer::WorkerLoop() {
  while (true) {
    Work work;
    bool have_work = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return !queue_.empty() || stop_.cancelled();
      });
      if (!queue_.empty()) {
        work = std::move(queue_.front());
        queue_.pop_front();
        have_work = true;
      } else if (stop_.cancelled()) {
        // Drain complete: the admitted backlog is what we owe, and it is
        // empty.
        return;
      }
    }
    if (!have_work) continue;
    admission_->OnDequeued();

    inflight_gauge_.Set(executing_.fetch_add(1) + 1);
    const uint64_t started_ms = SteadyNowMs();
    wire::Response response;
    const bool deadline_op = work.request.op == wire::Op::kMine ||
                             work.request.op == wire::Op::kQuery;
    if (work.has_deadline && deadline_op && work.deadline.expired()) {
      // The queue wait consumed the whole budget; do not start mining.
      response.code = static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
      response.message = "deadline expired in admission queue";
    } else {
      response = Execute(work.request, work.deadline, work.has_deadline);
    }
    admission_->OnExecuted(SteadyNowMs() - started_ms);
    inflight_gauge_.Set(executing_.fetch_sub(1) - 1);

    response.ready_state = static_cast<uint8_t>(admission_->ready_state());
    const std::string payload =
        wire::EncodeResponse(response, work.request.wire_version);
    const bool keep =
        wire::WriteFrame(work.fd, payload, options_.io_timeout_ms).ok();
    if (!keep) io_timeouts_.Inc();
    admission_->OnCompleted(work.request.tenant);
    {
      std::lock_guard<std::mutex> lock(returns_mu_);
      returns_.emplace_back(work.fd, keep);
    }
    WakePoller();
  }
}

wire::Response PatternServer::Execute(const wire::Request& request,
                                      const Deadline& deadline,
                                      bool has_deadline) {
  wire::Response response;
  const auto fail = [&response](const Status& status) {
    response.code = static_cast<uint8_t>(status.code());
    response.message = status.message();
  };
  // Mutations answer with the catalog's new (version, length) so clients
  // can correlate later query responses with the snapshot they produced.
  const auto stamp = [this, &response, &fail](const std::string& name) {
    const auto stamped = service_->store().VersionAndLength(name);
    if (!stamped.ok()) {
      fail(stamped.status());
      return;
    }
    response.version = stamped->first;
    response.length = stamped->second;
  };
  switch (request.op) {
    case wire::Op::kPut: {
      const Status status = service_->Put(request.name, request.series);
      if (!status.ok()) {
        fail(status);
        break;
      }
      stamp(request.name);
      break;
    }
    case wire::Op::kAppend: {
      const Status status = service_->Append(request.name, request.instants);
      if (!status.ok()) {
        fail(status);
        break;
      }
      stamp(request.name);
      break;
    }
    case wire::Op::kGet: {
      Result<SeriesSnapshot> snapshot = service_->Get(request.name);
      if (!snapshot.ok()) {
        fail(snapshot.status());
        break;
      }
      response.has_series = true;
      response.series = std::move(snapshot->series);
      response.version = snapshot->version;
      response.length = response.series.length();
      break;
    }
    case wire::Op::kMine:
    case wire::Op::kQuery: {
      QueryRequest query;
      query.series = request.name;
      query.period = request.period;
      query.min_confidence = request.min_confidence;
      query.min_count = request.min_count;
      query.max_letters = request.max_letters;
      if (request.algorithm >
          static_cast<uint8_t>(Algorithm::kMaxSubpatternHitSet)) {
        fail(Status::InvalidArgument("unknown algorithm: " +
                                     std::to_string(request.algorithm)));
        break;
      }
      query.algorithm = static_cast<Algorithm>(request.algorithm);
      query.force_rebuild = request.op == wire::Op::kMine;
      if (has_deadline) query.deadline = deadline;
      Result<PatternCache::Response> served = service_->Query(query);
      if (!served.ok()) {
        fail(served.status());
        break;
      }
      response.cache_outcome = static_cast<uint8_t>(served->outcome);
      response.version = served->version;
      response.length = served->length;
      response.num_periods = served->result.stats().num_periods;
      response.period = request.period;
      response.symbols = served->symbols.names();
      response.patterns.reserve(served->result.size());
      for (const FrequentPattern& frequent : served->result.patterns()) {
        wire::WirePattern pattern;
        for (uint32_t position = 0; position < frequent.pattern.period();
             ++position) {
          frequent.pattern.at(position).ForEach(
              [&pattern, position](uint32_t feature) {
                pattern.letters.emplace_back(position, feature);
              });
        }
        pattern.count = frequent.count;
        pattern.confidence = frequent.confidence;
        response.patterns.push_back(std::move(pattern));
      }
      break;
    }
    case wire::Op::kStats:
      response.stats_json = service_->StatsJson();
      response.metrics_prom = service_->MetricsProm();
      break;
    case wire::Op::kShutdown:
    case wire::Op::kHealth:
    case wire::Op::kReady:
      // Handled inline by the poller; unreachable here.
      break;
  }
  return response;
}

}  // namespace ppm::service
