#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/log.h"

namespace ppm::service {

namespace {

Result<int> ListenOn(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  // A previous daemon that died uncleanly leaves its socket file behind.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind(" + path +
                           ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError("listen(" + path +
                           ") failed: " + std::strerror(err));
  }
  return fd;
}

}  // namespace

Result<std::unique_ptr<PatternServer>> PatternServer::Start(
    const std::string& root, const ServerOptions& options) {
  std::unique_ptr<PatternServer> server(new PatternServer(options));
  if (server->options_.num_workers == 0) server->options_.num_workers = 1;
  if (server->options_.max_inflight == 0) {
    server->options_.max_inflight = 2 * server->options_.num_workers;
  }
  PPM_ASSIGN_OR_RETURN(server->service_,
                       MineService::Open(root, options.service));
  PPM_ASSIGN_OR_RETURN(server->listen_fd_, ListenOn(options.socket_path));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  server->inflight_gauge_ = registry.GetGauge("ppm.server.inflight");
  server->connections_ = registry.GetCounter("ppm.server.connections");
  server->rejected_ = registry.GetCounter("ppm.server.rejected");

  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->workers_.reserve(server->options_.num_workers);
  for (uint32_t i = 0; i < server->options_.num_workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  PPM_LOG(kInfo) << "ppmd listening on " << options.socket_path << " ("
                 << server->options_.num_workers << " workers)";
  return server;
}

PatternServer::~PatternServer() {
  RequestStop();
  Wait();
}

void PatternServer::Wait() {
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Connections still queued but never picked up by a worker.
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
  joined_ = true;
}

void PatternServer::AcceptLoop() {
  while (!stop_.cancelled()) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      PPM_LOG(kError) << "ppmd accept poll failed: " << std::strerror(errno);
      return;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      PPM_LOG(kError) << "ppmd accept failed: " << std::strerror(errno);
      return;
    }
    connections_.Inc();
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void PatternServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return !pending_.empty() || stop_.cancelled();
      });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else if (stop_.cancelled()) {
        return;
      }
    }
    if (fd >= 0) HandleConnection(fd);
  }
}

void PatternServer::HandleConnection(int fd) {
  const auto should_stop = [this] { return stop_.cancelled(); };
  // Both sides greet; a non-PPMRPC1 peer is dropped before any frame parse.
  if (!wire::WriteMagic(fd).ok() || !wire::ExpectMagic(fd).ok()) {
    ::close(fd);
    return;
  }
  while (!stop_.cancelled()) {
    Result<std::string> frame = wire::ReadFrame(fd, should_stop);
    if (!frame.ok()) {
      // Clean close (kNotFound) and drain (kCancelled) are normal exits.
      if (frame.status().code() != StatusCode::kNotFound &&
          frame.status().code() != StatusCode::kCancelled) {
        PPM_LOG(kWarn) << "ppmd dropping connection: "
                       << frame.status().ToString();
      }
      break;
    }
    Result<wire::Request> request = wire::DecodeRequest(*frame);
    wire::Response response;
    bool shutdown = false;
    if (!request.ok()) {
      response.code = static_cast<uint8_t>(request.status().code());
      response.message = request.status().message();
    } else {
      // Admission control: a request past the inflight cap is refused
      // outright -- it must not queue behind mining work and blow the
      // resident footprint.
      const uint32_t slot = inflight_.fetch_add(1) + 1;
      inflight_gauge_.Set(slot);
      if (slot > options_.max_inflight) {
        rejected_.Inc();
        response.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
        response.message = "server at capacity (" +
                           std::to_string(options_.max_inflight) +
                           " requests in flight)";
      } else {
        response = Execute(*request);
        shutdown = request->op == wire::Op::kShutdown &&
                   response.code == static_cast<uint8_t>(StatusCode::kOk);
      }
      inflight_gauge_.Set(inflight_.fetch_sub(1) - 1);
    }
    if (!wire::WriteFrame(fd, wire::EncodeResponse(response)).ok()) break;
    if (shutdown) {
      RequestStop();
      break;
    }
  }
  ::close(fd);
}

wire::Response PatternServer::Execute(const wire::Request& request) {
  wire::Response response;
  const auto fail = [&response](const Status& status) {
    response.code = static_cast<uint8_t>(status.code());
    response.message = status.message();
  };
  // Mutations answer with the catalog's new (version, length) so clients
  // can correlate later query responses with the snapshot they produced.
  const auto stamp = [this, &response, &fail](const std::string& name) {
    const auto stamped = service_->store().VersionAndLength(name);
    if (!stamped.ok()) {
      fail(stamped.status());
      return;
    }
    response.version = stamped->first;
    response.length = stamped->second;
  };
  switch (request.op) {
    case wire::Op::kPut: {
      const Status status = service_->Put(request.name, request.series);
      if (!status.ok()) {
        fail(status);
        break;
      }
      stamp(request.name);
      break;
    }
    case wire::Op::kAppend: {
      const Status status = service_->Append(request.name, request.instants);
      if (!status.ok()) {
        fail(status);
        break;
      }
      stamp(request.name);
      break;
    }
    case wire::Op::kGet: {
      Result<SeriesSnapshot> snapshot = service_->Get(request.name);
      if (!snapshot.ok()) {
        fail(snapshot.status());
        break;
      }
      response.has_series = true;
      response.series = std::move(snapshot->series);
      response.version = snapshot->version;
      response.length = response.series.length();
      break;
    }
    case wire::Op::kMine:
    case wire::Op::kQuery: {
      QueryRequest query;
      query.series = request.name;
      query.period = request.period;
      query.min_confidence = request.min_confidence;
      query.min_count = request.min_count;
      query.max_letters = request.max_letters;
      if (request.algorithm >
          static_cast<uint8_t>(Algorithm::kMaxSubpatternHitSet)) {
        fail(Status::InvalidArgument("unknown algorithm: " +
                                     std::to_string(request.algorithm)));
        break;
      }
      query.algorithm = static_cast<Algorithm>(request.algorithm);
      query.force_rebuild = request.op == wire::Op::kMine;
      if (request.deadline_ms != 0) {
        query.deadline = Deadline::After(request.deadline_ms);
      }
      Result<PatternCache::Response> served = service_->Query(query);
      if (!served.ok()) {
        fail(served.status());
        break;
      }
      response.cache_outcome = static_cast<uint8_t>(served->outcome);
      response.version = served->version;
      response.length = served->length;
      response.num_periods = served->result.stats().num_periods;
      response.period = request.period;
      response.symbols = served->symbols.names();
      response.patterns.reserve(served->result.size());
      for (const FrequentPattern& frequent : served->result.patterns()) {
        wire::WirePattern pattern;
        for (uint32_t position = 0; position < frequent.pattern.period();
             ++position) {
          frequent.pattern.at(position).ForEach(
              [&pattern, position](uint32_t feature) {
                pattern.letters.emplace_back(position, feature);
              });
        }
        pattern.count = frequent.count;
        pattern.confidence = frequent.confidence;
        response.patterns.push_back(std::move(pattern));
      }
      break;
    }
    case wire::Op::kStats:
      response.stats_json = service_->StatsJson();
      response.metrics_prom = service_->MetricsProm();
      break;
    case wire::Op::kShutdown:
      PPM_LOG(kInfo) << "ppmd shutdown requested over socket";
      break;
  }
  return response;
}

}  // namespace ppm::service
