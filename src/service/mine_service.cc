#include "service/mine_service.h"

#include <utility>

#include "obs/build_info.h"
#include "obs/run_report.h"

namespace ppm::service {

Result<std::unique_ptr<MineService>> MineService::Open(
    const std::string& root, const MineServiceOptions& options) {
  std::unique_ptr<MineService> service(new MineService(options));
  SeriesStore::Options store_options;
  store_options.wal_fsync = options.wal_fsync;
  store_options.max_instants_per_series = options.max_instants_per_series;
  PPM_ASSIGN_OR_RETURN(service->store_, SeriesStore::Open(root, store_options));
  service->cache_ = std::make_unique<PatternCache>(
      service->store_.get(), options.cache_memory_budget_bytes);
  // Mutations reach the cache under the mutated series' lock, so a served
  // result can never miss the delta of an acknowledged append.
  PatternCache* cache = service->cache_.get();
  service->store_->SetMutationListener(
      [cache](const SeriesStore::Mutation& mutation) {
        cache->OnMutation(mutation);
      });
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  service->requests_ = registry.GetCounter("ppm.server.requests");
  service->rejected_ = registry.GetCounter("ppm.server.rejected");
  return service;
}

Status MineService::Put(const std::string& name,
                        const tsdb::TimeSeries& series) {
  requests_.Inc();
  obs::MetricsRegistry::Global().GetCounter("ppm.server.requests.put").Inc();
  return store_->Put(name, series);
}

Status MineService::Append(
    const std::string& name,
    const std::vector<std::vector<std::string>>& instants) {
  requests_.Inc();
  obs::MetricsRegistry::Global().GetCounter("ppm.server.requests.append").Inc();
  return store_->Append(name, instants);
}

Result<SeriesSnapshot> MineService::Get(const std::string& name) {
  requests_.Inc();
  obs::MetricsRegistry::Global().GetCounter("ppm.server.requests.get").Inc();
  return store_->Snapshot(name);
}

Status MineService::Drop(const std::string& name) {
  requests_.Inc();
  obs::MetricsRegistry::Global().GetCounter("ppm.server.requests.drop").Inc();
  return store_->Drop(name);
}

std::vector<std::string> MineService::List() const {
  return store_->List();
}

Result<PatternCache::Response> MineService::Query(const QueryRequest& request) {
  requests_.Inc();
  obs::MetricsRegistry::Global()
      .GetCounter(request.force_rebuild ? "ppm.server.requests.mine"
                                        : "ppm.server.requests.query")
      .Inc();

  PatternCache::Request cache_request;
  cache_request.series = request.series;
  cache_request.algorithm = request.algorithm;
  cache_request.force_rebuild = request.force_rebuild;
  MiningOptions& options = cache_request.options;
  options.period = request.period;
  options.min_confidence = request.min_confidence;
  options.min_count = request.min_count;
  options.max_letters = request.max_letters;
  options.num_threads = 1;
  options.cancel = request.cancel;
  options.deadline = request.deadline;
  // Admission control: a request whose Property 3.2 hit-set prediction
  // exceeds the configured budget is rejected outright rather than
  // degraded -- a resident server must not gamble on oversized queries.
  options.memory_budget_bytes = options_.mining_memory_budget_bytes;
  options.budget_policy = BudgetPolicy::kFail;

  Result<PatternCache::Response> response = cache_->Serve(cache_request);
  if (!response.ok() &&
      response.status().code() == StatusCode::kResourceExhausted) {
    rejected_.Inc();
  }
  return response;
}

std::string MineService::StatsJson() const {
  obs::RunReport report("ppmd");
  obs::AddBuildMeta(&report);
  report.AddMeta("store.root", store_->root());
  report.AddMeta("cache.entries", cache_->entry_count());
  report.AddMeta("cache.bytes", cache_->resident_bytes());
  report.CaptureGlobal();
  return report.ToJson();
}

std::string MineService::MetricsProm() const {
  return obs::MetricsRegistry::Global().RenderPrometheus();
}

double MineService::CachePressure() const {
  if (options_.cache_memory_budget_bytes == 0) return 0.0;
  const double pressure =
      static_cast<double>(cache_->resident_bytes()) /
      static_cast<double>(options_.cache_memory_budget_bytes);
  return pressure > 1.0 ? 1.0 : pressure;
}

}  // namespace ppm::service
