#ifndef PPM_SERVICE_PATTERN_CACHE_H_
#define PPM_SERVICE_PATTERN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/miner.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "obs/metrics.h"
#include "service/series_store.h"
#include "stream/continuous_miner.h"
#include "tsdb/symbol_table.h"
#include "util/status.h"

namespace ppm::service {

/// Mined-pattern cache keyed by (series, period, algorithm, min_conf,
/// min_count, max_letters), backed per entry by a resident
/// `stream::ContinuousMiner` so a re-query after appends costs O(Δ) -- the
/// appended instants feed the incremental miner -- instead of a from-scratch
/// re-mine (docs/SERVING.md).
///
/// Coherence: the cache subscribes to `SeriesStore` mutations (delivered
/// under the mutated series' lock). An append feeds every in-sync entry of
/// that series and stales their memoized results; a put or drop discards
/// the entries' miners outright. A query outcome is one of:
///
///   - *hit*: the memoized result is already at the store's current version.
///   - *refresh*: the resident miner is in sync (fed every append, no
///     drifted letters) -- one `Snapshot()` derivation, O(hit store).
///   - *miss*: full rebuild from a fresh store snapshot (first query,
///     post-put/drop, a missed delta, or letter drift).
///
/// Served patterns are always field-identical to a batch mine of the same
/// snapshot (`tests/serving_differential_test.cc`): the miner is seeded
/// with the snapshot's own F1 letters, and drift detection forces a rebuild
/// whenever an unseeded letter becomes frequent.
class PatternCache {
 public:
  enum class Outcome : uint8_t { kMiss = 0, kHit = 1, kRefresh = 2 };

  struct Request {
    std::string series;
    Algorithm algorithm = Algorithm::kMaxSubpatternHitSet;
    /// period / min_confidence / min_count / max_letters identify the
    /// entry; cancel / deadline / memory budget govern this call only.
    MiningOptions options;
    /// Skip the memo and the resident miner: mine a fresh snapshot (the
    /// `mine` op; `query` serves from cache when it can).
    bool force_rebuild = false;
  };

  struct Response {
    MiningResult result;
    /// Names for the ids in `result` (the serving snapshot's table).
    tsdb::SymbolTable symbols;
    Outcome outcome = Outcome::kMiss;
    /// Store version and length of the snapshot the result reflects.
    uint64_t version = 0;
    uint64_t length = 0;
  };

  /// `memory_budget_bytes` caps resident miner state; least-recently-used
  /// entries are evicted past it (0 = unbounded).
  PatternCache(SeriesStore* store, uint64_t memory_budget_bytes);

  /// Serves one query (see class comment for the outcome taxonomy).
  Result<Response> Serve(const Request& request);

  /// `SeriesStore` mutation listener; wire via `SetMutationListener`.
  /// Called under the mutated series' lock.
  void OnMutation(const SeriesStore::Mutation& mutation);

  /// Resident entries (tests).
  uint64_t entry_count() const;

  /// Approximate resident bytes (tests).
  uint64_t resident_bytes() const;

 private:
  struct Entry {
    mutable std::mutex mu;
    /// Request fields this entry is keyed by (for eviction bookkeeping).
    std::string series;

    /// Resident incremental miner and the store version its state
    /// reflects. `miner_in_sync` clears when a delta was missed or the
    /// series was replaced/dropped.
    std::unique_ptr<stream::ContinuousMiner> miner;
    bool miner_in_sync = false;
    uint64_t fed_version = 0;

    /// Symbol table captured when the miner was seeded (patterns only
    /// reference seeded ids, so this table always covers them).
    tsdb::SymbolTable symbols;

    /// Memoized derivation and the version it serves.
    MiningResult memo;
    bool memo_valid = false;
    uint64_t memo_version = 0;
    uint64_t memo_length = 0;

    /// Newest mutation version observed for the series -- detects deltas
    /// that raced a rebuild.
    uint64_t last_mutation_version = 0;

    /// LRU tick; atomic so eviction can rank entries without their locks.
    std::atomic<uint64_t> last_used{0};
    /// Charged bytes; guarded by the cache's `map_mu_`, not `mu`.
    uint64_t approx_bytes = 0;
  };

  std::string EncodeKey(const Request& request) const;
  std::shared_ptr<Entry> GetOrCreate(const Request& request);
  void MaybeEvict();

  SeriesStore* store_;
  uint64_t memory_budget_bytes_;

  mutable std::mutex map_mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::atomic<uint64_t> lru_tick_{0};
  uint64_t total_bytes_ = 0;

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter refreshes_;
  obs::Counter invalidations_;
  obs::Counter evictions_;
  obs::Gauge bytes_gauge_;
  obs::Gauge entries_gauge_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_PATTERN_CACHE_H_
