#ifndef PPM_SERVICE_ADMISSION_H_
#define PPM_SERVICE_ADMISSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/wire.h"
#include "util/status.h"

namespace ppm::service {

/// Per-tenant admission limits. A zero field means "unlimited" for that
/// dimension, so the default-constructed quota admits everything.
struct TenantQuota {
  /// Sustained request rate (token-bucket refill, requests per second).
  double rps = 0.0;
  /// Bucket capacity: how many requests may burst above the sustained rate.
  double burst = 0.0;
  /// Admitted-but-not-yet-completed requests the tenant may hold at once.
  /// This is what isolates tenants: it bounds how much of the shared worker
  /// queue one tenant can occupy, so a greedy tenant saturates its own cap
  /// while polite tenants still find queue room.
  uint64_t max_inflight = 0;
};

/// Parses `ppmd --tenant-quota` specs: a comma-separated list of
/// `tenant=rps:burst:inflight` entries (one flag value, since ArgMap
/// rejects repeated flags). The tenant name `default` sets the quota
/// applied to every tenant without an explicit entry -- including requests
/// from v1 clients, which carry no tenant id at all.
Result<std::map<std::string, TenantQuota>> ParseTenantQuotas(
    std::string_view spec);

/// Admission decision for one request.
struct AdmissionDecision {
  bool admitted = false;
  /// When rejected: why, as a `kResourceExhausted` detail message.
  std::string reason;
  /// When rejected: structured hint for when a retry could plausibly be
  /// admitted (0 = no estimate, e.g. inflight cap -- depends on completions).
  uint32_t retry_after_ms = 0;
  /// Queue position estimate at admission time, for metrics/diagnostics.
  uint64_t queue_depth = 0;
};

/// Overload protection for `ppmd`: per-tenant token buckets and in-flight
/// caps, a bounded admission queue with deadline-aware shedding, and a
/// readiness state machine (accepting -> draining -> shedding) driven by
/// queue depth and cache-budget pressure.
///
/// The controller only does accounting -- it never blocks and holds no
/// request data. The server calls `Admit` when a complete frame arrives,
/// `OnExecuted(exec_ms)` when a worker finishes mining (feeds the service
/// -time EMA used for deadline feasibility), and `OnCompleted` when the
/// request's response has been written (releases the inflight slot).
///
/// Thread-safe; time is injectable for deterministic unit tests.
class AdmissionController {
 public:
  struct Options {
    /// Quotas by tenant name; `default` is the fallback for unnamed tenants.
    std::map<std::string, TenantQuota> quotas;
    /// Bounded FIFO queue capacity (admitted, waiting for a worker).
    uint64_t queue_capacity = 64;
    /// Worker threads draining the queue (feeds wait estimation).
    uint64_t num_workers = 1;
    /// Queue depth at which readiness degrades to kShedding. 0 derives
    /// 3/4 of `queue_capacity`.
    uint64_t shed_watermark = 0;
    /// Millisecond clock; defaults to steady_clock. Injectable for tests.
    std::function<uint64_t()> now_ms;
    /// Optional cache-budget pressure probe in [0, 1]; >= 0.95 degrades
    /// readiness to kShedding even with an empty queue.
    std::function<double()> cache_pressure;
  };

  explicit AdmissionController(Options options);

  /// Decides admission for one request from `tenant` (empty = default)
  /// carrying `deadline_ms` (0 = none). Checks, in order: drain state,
  /// queue capacity, tenant token bucket, tenant inflight cap, and
  /// deadline feasibility (estimated queue wait vs. the request's budget).
  /// On admission the tenant's inflight slot and one queue slot are held
  /// until `OnCompleted`.
  AdmissionDecision Admit(const std::string& tenant, uint32_t deadline_ms);

  /// A worker picked the request up: it left the queue.
  void OnDequeued();

  /// A worker finished executing a request that ran for `exec_ms`;
  /// updates the EMA used to estimate queue wait.
  void OnExecuted(uint64_t exec_ms);

  /// The request fully completed (response written or connection dropped);
  /// releases the tenant's inflight slot.
  void OnCompleted(const std::string& tenant);

  /// Enters drain: every subsequent `Admit` rejects, readiness reports
  /// kDraining (kShedding once the backlog clears is *not* entered --
  /// drain is terminal).
  void StartDrain();

  wire::ReadyState ready_state() const;

  /// JSON snapshot for health/ready responses: ready state, queue depth,
  /// capacity, EMA, cache pressure, and per-tenant admitted/rejected/
  /// inflight counters.
  std::string HealthJson() const;

  /// Estimated wait for the next queued request, from queue depth, the
  /// execution-time EMA, and the worker count.
  uint64_t EstimatedQueueWaitMs() const;

  uint64_t queue_depth() const;

 private:
  struct TenantState {
    TenantQuota quota;
    bool has_quota = false;  // Explicit entry (vs. default fallback).
    double tokens = 0.0;
    uint64_t last_refill_ms = 0;
    uint64_t inflight = 0;
    uint64_t admitted_total = 0;
    uint64_t rejected_total = 0;
  };

  /// Returns the tracked entry for `tenant` (empty = default). Past the
  /// tracked-tenant cap, unknown names share one overflow entry -- the
  /// returned key is the canonical name to use for metrics so adversarial
  /// tenant-name cardinality cannot grow the metrics registry either.
  std::map<std::string, TenantState>::iterator StateFor(
      const std::string& tenant);
  uint64_t EstimatedQueueWaitMsLocked() const;
  wire::ReadyState ReadyStateLocked() const;

  const Options options_;
  const uint64_t shed_watermark_;
  TenantQuota default_quota_;

  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
  uint64_t queue_depth_ = 0;
  /// Requests a worker is currently executing (OnDequeued -> OnExecuted);
  /// while executing + queued leave a worker free, the wait estimate is
  /// zero so deadline shedding never fires on an idle server.
  uint64_t executing_ = 0;
  bool draining_ = false;
  /// EMA of worker execution time, milliseconds; primed pessimistically at
  /// 0 so an idle server admits everything until real samples arrive.
  double exec_ema_ms_ = 0.0;
  bool has_exec_sample_ = false;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_ADMISSION_H_
