#ifndef PPM_SERVICE_CLIENT_H_
#define PPM_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "service/wire.h"
#include "util/status.h"

namespace ppm::service {

/// Synchronous PPMRPC1 client over a unix-domain socket: one `Call` sends a
/// request frame and blocks for the matching response frame. Used by
/// `ppm client` and the serving tests. Not thread-safe; use one `Client`
/// per thread (the daemon serves each connection independently).
class Client {
 public:
  /// Connects and exchanges magics. A single attempt: a daemon that is
  /// still starting up (socket file absent, or bound but not yet
  /// listening) surfaces as kIoError.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& socket_path);

  /// `Connect` with bounded retry for *transient* startup races only --
  /// ECONNREFUSED (socket exists, nobody listening yet) and ENOENT
  /// (daemon hasn't bound the socket yet). Retries every
  /// `retry_interval_ms` until `wait_ms` of wall clock is spent, then
  /// returns the last failure. Any other error (permission, bad path,
  /// protocol mismatch) fails immediately. `wait_ms == 0` is exactly
  /// `Connect`.
  static Result<std::unique_ptr<Client>> ConnectWithRetry(
      const std::string& socket_path, uint64_t wait_ms,
      uint64_t retry_interval_ms = 20);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Result<wire::Response> Call(const wire::Request& request);

  /// `Call` that honors admission-control shedding: a response carrying
  /// `kResourceExhausted` with a `retry_after_ms` hint is retried after
  /// sleeping `max(hint, backoff)` -- backoff starts at 50 ms and doubles
  /// per attempt, capped at 2 s -- until `retry_budget_ms` of wall clock
  /// is spent, at which point the last shed response is returned as-is.
  /// Rejections without a hint (drain, over-inflight, mining budget) and
  /// every other status return immediately: only "try again later"
  /// rejections are worth waiting out. `retry_budget_ms == 0` is exactly
  /// `Call`.
  Result<wire::Response> CallWithRetry(const wire::Request& request,
                                       uint64_t retry_budget_ms);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_CLIENT_H_
