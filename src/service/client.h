#ifndef PPM_SERVICE_CLIENT_H_
#define PPM_SERVICE_CLIENT_H_

#include <memory>
#include <string>

#include "service/wire.h"
#include "util/status.h"

namespace ppm::service {

/// Synchronous PPMRPC1 client over a unix-domain socket: one `Call` sends a
/// request frame and blocks for the matching response frame. Used by
/// `ppm client` and the serving tests. Not thread-safe; use one `Client`
/// per thread (the daemon serves each connection independently).
class Client {
 public:
  /// Connects and exchanges magics.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& socket_path);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Result<wire::Response> Call(const wire::Request& request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
};

}  // namespace ppm::service

#endif  // PPM_SERVICE_CLIENT_H_
