#ifndef PPM_SERVICE_WIRE_H_
#define PPM_SERVICE_WIRE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::service::wire {

/// PPMRPC1: the length-prefixed binary protocol `ppmd` speaks over its unix
/// socket (docs/SERVING.md).
///
/// Connection: each side sends the 8-byte magic first; then the client sends
/// request frames and reads one response frame per request.
///
/// Frame:
///   payload_len   u32 LE   payload bytes (<= kMaxFramePayloadBytes)
///   payload_crc   u32 LE   CRC-32C of the payload
///   payload       bytes
///
/// Payload scalars are little-endian; strings are u32 length + bytes;
/// doubles travel as their IEEE-754 bit pattern in a u64. Decoders validate
/// every length against the remaining payload and every feature id against
/// the symbol table, so a malformed or truncated frame yields
/// `kInvalidArgument`/`kCorruption`, never out-of-bounds access.
///
/// Payload versioning: the original (v1) request payload starts with the
/// `op` byte. The multi-tenant revision (v2) starts with the marker byte
/// `kV2Marker` (0xFF, never a valid op or status code) and adds a tenant id
/// to requests plus retry-after / readiness fields to responses. Decoders
/// auto-detect the layout from the first byte, so a new server accepts old
/// clients (their requests map to the default tenant) and answers them in
/// the layout they spoke; an old server answers a v2 frame with a clean
/// "unknown op" error.
inline constexpr char kMagic[8] = {'P', 'P', 'M', 'R', 'P', 'C', '1', '\n'};
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 26;
inline constexpr uint8_t kV2Marker = 0xff;

enum class Op : uint8_t {
  kPut = 1,
  kAppend = 2,
  kGet = 3,
  kMine = 4,
  kQuery = 5,
  kStats = 6,
  kShutdown = 7,
  /// v2-only: liveness probe, always answered -- even while shedding.
  kHealth = 8,
  /// v2-only: readiness probe; non-OK while draining or shedding.
  kReady = 9,
};

/// Admission readiness, least to most degraded (docs/SERVING.md).
enum class ReadyState : uint8_t {
  kAccepting = 0,
  kDraining = 1,
  kShedding = 2,
};

/// Human-readable form of a wire `ready_state` byte ("accepting",
/// "draining", "shedding"; unknown bytes print as "unknown(N)").
std::string ReadyStateName(uint8_t state);

struct Request {
  Op op = Op::kQuery;
  /// Per-request deadline in milliseconds (0 = none); the server converts
  /// it to an absolute deadline *at admission*, so time spent queued is
  /// subtracted from the mining budget and an overdue request returns
  /// `kDeadlineExceeded` without disturbing other in-flight requests.
  uint32_t deadline_ms = 0;
  /// v2: tenant id the request is accounted and rate-limited under; empty
  /// (and every v1 request) maps to the default tenant.
  std::string tenant;
  std::string name;

  /// kPut payload.
  tsdb::TimeSeries series;
  /// kAppend payload: instants as feature-name lists.
  std::vector<std::vector<std::string>> instants;

  /// kMine / kQuery parameters (kMine forces a fresh re-mine; kQuery may
  /// serve from the pattern cache).
  uint32_t period = 0;
  double min_confidence = 0.8;
  uint64_t min_count = 0;
  uint32_t max_letters = 0;
  /// Cast of `ppm::Algorithm`.
  uint8_t algorithm = 1;

  /// Layout the request was decoded from (1 or 2); responses are encoded
  /// in the same layout so old clients never see fields they cannot parse.
  uint8_t wire_version = 1;
};

/// One mined pattern on the wire: its letters as (position, feature-id)
/// pairs against the response's symbol list.
struct WirePattern {
  std::vector<std::pair<uint32_t, uint32_t>> letters;
  uint64_t count = 0;
  double confidence = 0.0;
};

struct Response {
  /// Cast of `StatusCode`; nonzero means `message` explains the failure and
  /// the result fields are empty.
  uint8_t code = 0;
  std::string message;

  /// kMine / kQuery results.
  uint8_t cache_outcome = 0;  // PatternCache::Outcome
  uint64_t version = 0;
  uint64_t length = 0;
  uint64_t num_periods = 0;
  uint32_t period = 0;
  std::vector<std::string> symbols;
  std::vector<WirePattern> patterns;

  /// kGet result.
  bool has_series = false;
  tsdb::TimeSeries series;

  /// kStats result.
  std::string stats_json;
  std::string metrics_prom;

  /// v2 only. On a `kResourceExhausted` rejection, a structured hint: the
  /// server's estimate of when a retry could be admitted (0 = no hint).
  uint32_t retry_after_ms = 0;
  /// v2 only: cast of `ReadyState`, stamped on every v2 response.
  uint8_t ready_state = 0;
  /// v2 only: kHealth/kReady detail (queue depth, tenants, cache pressure).
  std::string health_json;
};

/// Picks v2 when the request uses v2-only features (a tenant id or a
/// health/ready op), v1 otherwise -- so a plain `ppm client` exercises the
/// v1 compatibility path against a new server.
std::string EncodeRequest(const Request& request);
/// Encodes in an explicit layout (tests and version-pinned callers).
std::string EncodeRequest(const Request& request, uint8_t version);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);  // v1 layout
std::string EncodeResponse(const Response& response, uint8_t version);
Result<Response> DecodeResponse(std::string_view payload);

/// Writes the 8-byte magic / one CRC-framed payload to `fd`, retrying
/// partial writes. `kIoError` on a closed peer. `timeout_ms` bounds the
/// whole write (0 = no bound): a peer that stops reading mid-response
/// yields `kIoError` after `timeout_ms` instead of pinning the writer
/// forever. Works on blocking and non-blocking fds.
Status WriteMagic(int fd);
Status WriteFrame(int fd, std::string_view payload, uint64_t timeout_ms = 0);

/// Serializes the frame header (length + CRC) and payload into one buffer
/// for writers that flush asynchronously (the server's poller). Lengths are
/// NOT checked here -- tests use this to craft adversarial frames.
std::string EncodeFrame(std::string_view payload);

/// Reads and verifies the peer's magic.
Status ExpectMagic(int fd);

/// Reads one frame. Blocks in 50 ms poll ticks so `should_stop` (optional)
/// can abort a drain: returns `kCancelled` when it fires between ticks.
/// A clean close before any header byte returns `kNotFound` ("connection
/// closed"); truncation mid-frame or a CRC mismatch returns `kIoError` /
/// `kCorruption`.
Result<std::string> ReadFrame(int fd,
                              const std::function<bool()>& should_stop = {});

}  // namespace ppm::service::wire

#endif  // PPM_SERVICE_WIRE_H_
