#include "dist/coordinator.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "dist/shard_result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace ppm::dist {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWorkerExecFailure = 127;

/// Poll cadence of the supervision loop (reap + deadline checks).
constexpr std::chrono::milliseconds kPollInterval(10);

Result<std::string> SelfExePath() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n < 0) {
    return Status::IoError(std::string("readlink(/proc/self/exe) failed: ") +
                           std::strerror(errno));
  }
  buffer[n] = '\0';
  return std::string(buffer);
}

struct ShardState {
  enum class Phase { kPending, kRunning, kDone, kFailed };
  Phase phase = Phase::kPending;
  uint32_t attempts = 0;
  bool adopted = false;
  Clock::time_point eligible_at = Clock::time_point::min();
  std::string last_failure;
};

struct RunningWorker {
  uint32_t shard_id = 0;
  pid_t pid = -1;
  Clock::time_point started_at;
  bool killed_for_timeout = false;
};

}  // namespace

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kExitNonzero:
      return "exit";
    case FailureKind::kSignal:
      return "signal";
    case FailureKind::kTimeout:
      return "timeout";
    case FailureKind::kCorruptResult:
      return "corrupt_result";
  }
  return "unknown";
}

Result<RunSummary> RunShards(const ShardPlan& plan,
                             const std::string& plan_path,
                             const std::string& results_dir,
                             const CoordinatorOptions& options) {
  obs::TraceSpan run_span = obs::Tracer::Global().StartSpan("dist.run");
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter launched_counter =
      registry.GetCounter("ppm.dist.shards.launched");
  obs::Counter adopted_counter =
      registry.GetCounter("ppm.dist.shards.adopted");
  obs::Counter completed_counter =
      registry.GetCounter("ppm.dist.shards.completed");
  obs::Counter retried_counter =
      registry.GetCounter("ppm.dist.shards.retried");
  obs::Counter failed_counter = registry.GetCounter("ppm.dist.shards.failed");
  obs::Histogram attempts_histogram =
      registry.GetHistogram("ppm.dist.shard_attempts");
  obs::Histogram wall_histogram =
      registry.GetHistogram("ppm.dist.shard_wall_us");

  std::string worker_binary = options.worker_binary;
  if (worker_binary.empty()) {
    PPM_ASSIGN_OR_RETURN(worker_binary, SelfExePath());
  }
  if (options.max_parallel == 0) {
    return Status::InvalidArgument("--workers must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);
  if (ec) {
    return Status::IoError("cannot create results dir '" + results_dir +
                           "': " + ec.message());
  }

  const uint32_t num_shards = static_cast<uint32_t>(plan.shards.size());
  std::vector<ShardState> states(num_shards);

  // A shard with a valid result file is done without launching anything:
  // this is both the resume path and the crash-after-durable-write path.
  // An invalid file is removed so a relaunch cannot re-adopt it.
  const auto try_adopt = [&](uint32_t shard_id) -> bool {
    const std::string path = ShardResultPath(results_dir, shard_id);
    Result<ShardResult> read = ReadShardResultFile(path);
    if (read.ok()) {
      const Status valid = ValidateShardResult(plan, shard_id, *read);
      if (valid.ok()) return true;
      read = valid;
    }
    if (read.status().code() != StatusCode::kNotFound) {
      PPM_LOG(kWarn) << "dist: discarding unusable result for shard "
                     << shard_id << ": " << read.status().ToString();
      registry.GetCounter("ppm.dist.failures.corrupt_result").Inc();
      ::unlink(path.c_str());
    }
    return false;
  };

  const auto mark_done = [&](uint32_t shard_id, bool adopted) {
    ShardState& state = states[shard_id];
    state.phase = ShardState::Phase::kDone;
    state.adopted = adopted;
    if (adopted) adopted_counter.Inc();
    completed_counter.Inc();
  };

  for (uint32_t shard_id = 0; shard_id < num_shards; ++shard_id) {
    if (try_adopt(shard_id)) mark_done(shard_id, /*adopted=*/true);
  }

  const auto backoff_for = [&](uint32_t retry_number) {
    double ms = static_cast<double>(options.backoff_initial_ms);
    for (uint32_t i = 1; i < retry_number; ++i) {
      ms *= options.backoff_multiplier;
    }
    ms = std::min(ms, static_cast<double>(options.backoff_max_ms));
    return std::chrono::milliseconds(static_cast<int64_t>(ms));
  };

  /// Forks and execs one worker attempt; returns its pid.
  const auto launch = [&](uint32_t shard_id) -> Result<pid_t> {
    ShardState& state = states[shard_id];
    ++state.attempts;
    std::vector<std::string> argv = {
        worker_binary,
        "mine",
        "--shard",   std::to_string(shard_id),
        "--plan",    plan_path,
        "--results", results_dir,
        "--attempt", std::to_string(state.attempts),
    };
    argv.insert(argv.end(), options.worker_args.begin(),
                options.worker_args.end());
    const auto chaos = options.chaos_args.find(shard_id);
    if (chaos != options.chaos_args.end()) {
      argv.insert(argv.end(), chaos->second.begin(), chaos->second.end());
    }
    std::vector<char*> argv_ptrs;
    argv_ptrs.reserve(argv.size() + 1);
    for (std::string& arg : argv) argv_ptrs.push_back(arg.data());
    argv_ptrs.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      return Status::ResourceExhausted(std::string("fork() failed: ") +
                                       std::strerror(errno));
    }
    if (pid == 0) {
      ::execv(worker_binary.c_str(), argv_ptrs.data());
      // Nothing but async-signal-safe calls after a failed exec.
      ::_exit(kWorkerExecFailure);
    }
    state.phase = ShardState::Phase::kRunning;
    launched_counter.Inc();
    if (state.attempts > 1) retried_counter.Inc();
    PPM_LOG(kDebug) << "dist: launched shard " << shard_id << " attempt "
                    << state.attempts << " as pid " << pid;
    return pid;
  };

  Status first_failure = Status::OK();

  /// Applies one classified attempt failure: schedule a backoff retry
  /// while budget remains, otherwise abandon the shard.
  const auto record_failure = [&](uint32_t shard_id, FailureKind kind,
                                  const std::string& detail) {
    ShardState& state = states[shard_id];
    state.last_failure =
        std::string(FailureKindName(kind)) + ": " + detail;
    registry
        .GetCounter(std::string("ppm.dist.failures.") + FailureKindName(kind))
        .Inc();
    if (state.attempts <= options.max_retries) {
      state.phase = ShardState::Phase::kPending;
      state.eligible_at = Clock::now() + backoff_for(state.attempts);
      PPM_LOG(kInfo) << "dist: shard " << shard_id << " attempt "
                     << state.attempts << " failed (" << state.last_failure
                     << "); retrying after backoff";
      return;
    }
    state.phase = ShardState::Phase::kFailed;
    failed_counter.Inc();
    PPM_LOG(kWarn) << "dist: shard " << shard_id << " abandoned after "
                   << state.attempts << " attempts (" << state.last_failure
                   << ")";
    if (first_failure.ok()) {
      const std::string message =
          "shard " + std::to_string(shard_id) + " failed after " +
          std::to_string(state.attempts) + " attempts (" +
          state.last_failure + ")";
      switch (kind) {
        case FailureKind::kTimeout:
          first_failure = Status::DeadlineExceeded(message);
          break;
        case FailureKind::kCorruptResult:
          first_failure = Status::Corruption(message);
          break;
        default:
          first_failure = Status::Internal(message);
          break;
      }
    }
  };

  std::vector<RunningWorker> running;
  running.reserve(options.max_parallel);

  while (true) {
    // Launch: fill the bounded queue with eligible pending shards,
    // lowest id first. A shard still in backoff is skipped, not waited
    // on -- later shards may run ahead of it.
    const Clock::time_point now = Clock::now();
    for (uint32_t shard_id = 0;
         shard_id < num_shards && running.size() < options.max_parallel;
         ++shard_id) {
      ShardState& state = states[shard_id];
      if (state.phase != ShardState::Phase::kPending ||
          state.eligible_at > now) {
        continue;
      }
      // A retry first checks whether the failed attempt actually left a
      // valid result behind (a worker killed after its durable write did
      // the work; re-mining would only spend the budget for nothing).
      if (state.attempts > 0 && try_adopt(shard_id)) {
        mark_done(shard_id, /*adopted=*/true);
        continue;
      }
      PPM_ASSIGN_OR_RETURN(const pid_t pid, launch(shard_id));
      running.push_back(RunningWorker{shard_id, pid, Clock::now(), false});
    }

    if (running.empty()) {
      // Nothing in flight: either all shards are terminal, or the only
      // pending shards are in backoff -- sleep toward the earliest one.
      bool any_pending = false;
      Clock::time_point earliest = Clock::time_point::max();
      for (const ShardState& state : states) {
        if (state.phase == ShardState::Phase::kPending) {
          any_pending = true;
          earliest = std::min(earliest, state.eligible_at);
        }
      }
      if (!any_pending) break;
      const auto wait = earliest - Clock::now();
      if (wait > std::chrono::nanoseconds(0)) {
        std::this_thread::sleep_for(std::min<Clock::duration>(
            wait, std::chrono::milliseconds(50)));
      }
      continue;
    }

    // Liveness: SIGKILL any worker past its wall deadline; the reap
    // below then classifies it as a timeout rather than a plain signal.
    if (options.shard_timeout_ms != 0) {
      const Clock::time_point deadline_now = Clock::now();
      for (RunningWorker& worker : running) {
        if (worker.killed_for_timeout) continue;
        const auto elapsed = deadline_now - worker.started_at;
        if (elapsed >=
            std::chrono::milliseconds(options.shard_timeout_ms)) {
          PPM_LOG(kWarn) << "dist: shard " << worker.shard_id << " (pid "
                         << worker.pid << ") exceeded "
                         << options.shard_timeout_ms << "ms; killing";
          worker.killed_for_timeout = true;
          ::kill(worker.pid, SIGKILL);
        }
      }
    }

    // Reap: per-pid WNOHANG so the loop never blocks and never steals
    // child notifications from an embedding test process.
    bool reaped_any = false;
    for (size_t i = 0; i < running.size();) {
      RunningWorker worker = running[i];
      int wait_status = 0;
      const pid_t reaped = ::waitpid(worker.pid, &wait_status, WNOHANG);
      if (reaped == 0) {
        ++i;
        continue;
      }
      running.erase(running.begin() + i);
      reaped_any = true;
      if (reaped < 0) {
        record_failure(worker.shard_id, FailureKind::kSignal,
                       std::string("waitpid failed: ") +
                           std::strerror(errno));
        continue;
      }
      const uint64_t wall_us =
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - worker.started_at)
                  .count());
      wall_histogram.Observe(wall_us);
      if (worker.killed_for_timeout) {
        record_failure(worker.shard_id, FailureKind::kTimeout,
                       "killed after " +
                           std::to_string(options.shard_timeout_ms) + "ms");
      } else if (WIFSIGNALED(wait_status)) {
        record_failure(worker.shard_id, FailureKind::kSignal,
                       std::string("killed by signal ") +
                           std::to_string(WTERMSIG(wait_status)));
      } else if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) != 0) {
        record_failure(worker.shard_id, FailureKind::kExitNonzero,
                       "exit status " +
                           std::to_string(WEXITSTATUS(wait_status)));
      } else if (try_adopt(worker.shard_id)) {
        // Exit 0 and the result file verifies: the normal success path.
        mark_done(worker.shard_id, /*adopted=*/false);
        attempts_histogram.Observe(states[worker.shard_id].attempts);
      } else {
        // Exit 0 but no verifiable result: the worker lied or its file
        // was damaged before we read it.
        record_failure(worker.shard_id, FailureKind::kCorruptResult,
                       "exit 0 without a verifiable result file");
      }
    }
    if (!reaped_any) std::this_thread::sleep_for(kPollInterval);
  }

  RunSummary summary;
  summary.shards.reserve(num_shards);
  for (uint32_t shard_id = 0; shard_id < num_shards; ++shard_id) {
    const ShardState& state = states[shard_id];
    ShardOutcome outcome;
    outcome.shard_id = shard_id;
    outcome.completed = state.phase == ShardState::Phase::kDone;
    outcome.adopted = state.adopted;
    outcome.attempts = state.attempts;
    outcome.last_failure = state.last_failure;
    summary.shards.push_back(std::move(outcome));
    summary.launched += state.attempts;
    if (state.adopted) ++summary.adopted;
    if (state.attempts > 1) summary.retried += state.attempts - 1;
    if (state.phase == ShardState::Phase::kFailed) ++summary.failed;
  }
  run_span.End();
  PPM_LOG(kInfo) << "dist: run finished: " << num_shards - summary.failed
                 << "/" << num_shards << " shards complete ("
                 << summary.adopted << " adopted, " << summary.retried
                 << " retries)";
  if (summary.failed > 0 && !options.partial_ok) {
    return first_failure.ok()
               ? Status::Internal("shards failed without a recorded cause")
               : first_failure;
  }
  return summary;
}

}  // namespace ppm::dist
