#include "dist/framing.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/fs.h"

namespace ppm::dist {

namespace {
constexpr size_t kMagicLen = 8;
constexpr size_t kHeaderLen = kMagicLen + 8 + 4;  // magic + body_len + crc
}  // namespace

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

bool BodyReader::ReadU32(uint32_t* value) {
  if (remaining() < 4) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    *value |= static_cast<uint32_t>(
                  static_cast<unsigned char>(body_[pos_ + i]))
              << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool BodyReader::ReadU64(uint64_t* value) {
  if (remaining() < 8) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(
                  static_cast<unsigned char>(body_[pos_ + i]))
              << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool BodyReader::ReadF64(double* value) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

bool BodyReader::ReadString(std::string* value, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (len > max_len || remaining() < len) return false;
  value->assign(body_.data() + pos_, len);
  pos_ += len;
  return true;
}

uint32_t BodyFingerprint(std::string_view body) {
  return crc32c::Value(body);
}

Status WriteFramedFile(const std::string& path, const char* magic,
                       std::string_view body) {
  std::string bytes;
  bytes.reserve(kHeaderLen + body.size());
  bytes.append(magic, kMagicLen);
  PutU64(&bytes, body.size());
  PutU32(&bytes, BodyFingerprint(body));
  bytes.append(body);
  return fsutil::AtomicWriteFile(path, bytes);
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   const char* magic) {
  PPM_ASSIGN_OR_RETURN(const std::string bytes, fsutil::ReadFileBytes(path));
  if (bytes.size() < kHeaderLen) {
    return Status::Corruption("framed file too short: " + path);
  }
  if (bytes.compare(0, kMagicLen, magic, kMagicLen) != 0) {
    return Status::Corruption("bad magic: " + path);
  }
  BodyReader header(std::string_view(bytes).substr(kMagicLen, 12));
  uint64_t body_len = 0;
  uint32_t body_crc = 0;
  header.ReadU64(&body_len);
  header.ReadU32(&body_crc);
  if (bytes.size() - kHeaderLen != body_len) {
    return Status::Corruption("length mismatch: " + path);
  }
  const std::string_view body =
      std::string_view(bytes).substr(kHeaderLen, body_len);
  if (crc32c::Value(body) != body_crc) {
    return Status::Corruption("checksum mismatch: " + path);
  }
  return std::string(body);
}

}  // namespace ppm::dist
