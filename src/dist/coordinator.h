#ifndef PPM_DIST_COORDINATOR_H_
#define PPM_DIST_COORDINATOR_H_

// The supervising coordinator: fans `ppm mine --shard` worker processes
// out over a bounded work queue, watches each with a wall-clock
// deadline, classifies failures (nonzero exit, death by signal,
// timeout, corrupt/missing result file), retries with exponential
// backoff up to a budget, and degrades per `partial_ok` once the budget
// is spent. Resumable by construction: before launching anything it
// adopts every shard that already has a valid result file, so a re-run
// re-executes only the shards without one. See docs/DISTRIBUTED.md.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/shard_plan.h"
#include "util/status.h"

namespace ppm::dist {

/// Why a shard attempt failed (the coordinator's failure taxonomy).
enum class FailureKind {
  kExitNonzero = 0,  // worker exited with a nonzero status
  kSignal = 1,       // worker was killed by a signal (crash, OOM-kill)
  kTimeout = 2,      // worker outlived its deadline; coordinator SIGKILLed it
  kCorruptResult = 3,  // worker "succeeded" but its result file won't verify
};

const char* FailureKindName(FailureKind kind);

struct CoordinatorOptions {
  /// Path of the `ppm` binary to exec workers from. Empty means
  /// /proc/self/exe (the coordinator usually *is* a `ppm` process).
  std::string worker_binary;
  /// Bounded work queue width: at most this many workers at once.
  uint32_t max_parallel = 4;
  /// Retry budget per shard (total attempts = max_retries + 1).
  uint32_t max_retries = 2;
  /// Exponential backoff before retry k (1-based):
  /// `backoff_initial_ms * backoff_multiplier^(k-1)`, capped.
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;
  double backoff_multiplier = 2.0;
  /// Per-shard wall deadline; a worker past it is SIGKILLed and the
  /// attempt classified `kTimeout`. 0 means no deadline.
  uint64_t shard_timeout_ms = 0;
  /// After the retry budget: true = skip the shard and report it
  /// (`--partial ok`), false = fail the run with a status matching the
  /// shard's last failure.
  bool partial_ok = false;
  /// Extra argv appended to every worker (e.g. fault-injection flags the
  /// CI smoke arms globally).
  std::vector<std::string> worker_args;
  /// Extra argv appended to specific shards' workers -- the chaos seam
  /// the kill-point tests and the CI smoke drive (`--crash-after-segments`
  /// and friends ride in here).
  std::map<uint32_t, std::vector<std::string>> chaos_args;
};

/// Terminal state of one shard.
struct ShardOutcome {
  uint32_t shard_id = 0;
  bool completed = false;
  /// Completed without launching anything this run (a valid result file
  /// already existed -- the resume path, or a crash-after-durable-write).
  bool adopted = false;
  uint32_t attempts = 0;
  std::string last_failure;  // empty when the first attempt succeeded
};

struct RunSummary {
  std::vector<ShardOutcome> shards;
  uint32_t launched = 0;  // worker processes actually exec'd
  uint32_t adopted = 0;   // shards satisfied by pre-existing results
  uint32_t retried = 0;   // launches beyond each shard's first
  uint32_t failed = 0;    // shards abandoned after the retry budget

  bool complete() const { return failed == 0; }
};

/// Runs the plan's shards to completion (or exhaustion of retry
/// budgets). On return every shard in the summary either `completed`
/// (its verified result file is in `results_dir`) or counts toward
/// `failed` (only possible under `partial_ok`; otherwise the run itself
/// returns the last failure's status). Emits `ppm.dist.*` metrics:
/// shards launched/adopted/retried/failed counters, per-failure-kind
/// counters, and attempt/wall histograms.
Result<RunSummary> RunShards(const ShardPlan& plan,
                             const std::string& plan_path,
                             const std::string& results_dir,
                             const CoordinatorOptions& options);

}  // namespace ppm::dist

#endif  // PPM_DIST_COORDINATOR_H_
