#ifndef PPM_DIST_FRAMING_H_
#define PPM_DIST_FRAMING_H_

// CRC32C-framed single-block file container shared by the shard-plan
// manifest and the per-shard result files:
//
//   magic      8 bytes   (format tag, e.g. "PPMDPL1\n")
//   body_len   u64 LE
//   body_crc   u32 LE    CRC-32C of the body bytes
//   body       body_len bytes
//
// The same layout as the v3 `.ppmts` / checkpoint framing
// (docs/FILE_FORMATS.md): verify-before-parse, and any framing or CRC
// mismatch is `kCorruption`. Files are written via
// `fsutil::AtomicWriteFile`, so readers only ever observe a whole old
// file or a whole new file -- never a torn mix.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ppm::dist {

/// Little-endian body-encoding primitives (the PPMRPC1 conventions).
void PutU32(std::string* out, uint32_t value);
void PutU64(std::string* out, uint64_t value);
void PutF64(std::string* out, double value);
void PutString(std::string* out, std::string_view value);

/// Bounds-checked sequential reader over a decoded body. Every getter
/// returns false on truncation; callers surface that as `kCorruption`.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  bool ReadU32(uint32_t* value);
  bool ReadU64(uint64_t* value);
  bool ReadF64(double* value);
  /// Reads a u32 length followed by that many bytes; refuses lengths
  /// larger than `max_len` before allocating.
  bool ReadString(std::string* value, uint32_t max_len);

  size_t remaining() const { return body_.size() - pos_; }
  bool exhausted() const { return pos_ == body_.size(); }

 private:
  std::string_view body_;
  size_t pos_ = 0;
};

/// CRC-32C of `body` -- also used as the plan *fingerprint* that binds
/// shard result files to the exact plan they were mined under.
uint32_t BodyFingerprint(std::string_view body);

/// Atomically writes `magic + frame(body)` to `path`.
Status WriteFramedFile(const std::string& path, const char* magic,
                       std::string_view body);

/// Reads and verifies a framed file: magic match, exact length, CRC.
/// `kNotFound` when the file does not exist; `kCorruption` on any framing
/// or checksum mismatch.
Result<std::string> ReadFramedFile(const std::string& path,
                                   const char* magic);

}  // namespace ppm::dist

#endif  // PPM_DIST_FRAMING_H_
