#ifndef PPM_DIST_WORKER_H_
#define PPM_DIST_WORKER_H_

// The shard worker's mining kernel: one pass over the shard's segment
// range producing the raw sufficient statistics of `ShardResult`
// (unthresholded letter counts + unprojected segment patterns). Invoked
// by `ppm mine --shard` in a worker process; also usable in-process
// (dist tests and `bench_dist` run it directly).

#include <cstdint>
#include <functional>

#include "dist/shard_plan.h"
#include "dist/shard_result.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::dist {

/// Called after each mined segment with the number of segments done so
/// far (1-based). The `--crash-after-segments` kill seam hangs off this
/// hook, which also makes the kill-point matrix deterministic: the Nth
/// callback is always the same instant of progress.
using SegmentHook = std::function<void(uint64_t segments_done)>;

/// Mines shard `shard_id` of `plan` over `series` (the already-loaded
/// input named by the shard's `input_index`). Validates that the series
/// still matches the plan's recorded length (`kInvalidArgument` when the
/// input changed since planning). The returned result carries the plan's
/// fingerprint and canonical ordering, ready for `WriteShardResultFile`.
Result<ShardResult> MineShardCounts(const tsdb::TimeSeries& series,
                                    const ShardPlan& plan, uint32_t shard_id,
                                    const SegmentHook& on_segment = nullptr);

}  // namespace ppm::dist

#endif  // PPM_DIST_WORKER_H_
