#include "dist/merger.h"

#include <map>
#include <memory>
#include <utility>

#include "core/derivation.h"
#include "core/f1_scan.h"
#include "core/hit_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppm::dist {

namespace {

/// Merges the shards of one input. `results` are that input's present
/// shard results, already validated and sorted by segment_begin.
Result<MergedInput> MergeOneInput(const ShardPlan& plan, uint32_t input_index,
                                  const std::vector<const ShardResult*>& results,
                                  const std::vector<ShardSpec>& missing) {
  const PlanInput& input = plan.inputs[input_index];
  MergedInput merged;
  merged.input_index = input_index;
  merged.path = input.path;
  merged.missing = missing;

  // All shards of an input mined the same file, so they must agree on
  // the symbol table byte-for-byte; a disagreement means the input
  // changed between workers and the merge would be meaningless.
  for (const ShardResult* result : results) {
    if (result->symbols != results.front()->symbols) {
      return Status::Corruption(
          "shard " + std::to_string(result->shard_id) +
          " disagrees with shard " +
          std::to_string(results.front()->shard_id) +
          " on the symbol table of '" + input.path + "'");
    }
  }
  if (!results.empty()) {
    for (const std::string& name : results.front()->symbols) {
      merged.symbols.Intern(name);
    }
  }

  // Step 2: sum the raw letter counts and re-derive the global F_1 over
  // the full covered segment count.
  uint64_t covered = 0;
  for (const ShardResult* result : results) covered += result->num_segments();
  merged.segments_covered = covered;
  if (covered == 0) {
    return Status::Corruption("input '" + input.path +
                              "' has no merged shard");
  }
  std::map<Letter, uint64_t> letter_totals;
  for (const ShardResult* result : results) {
    for (const LetterCount& entry : result->letter_counts) {
      letter_totals[entry.letter] += entry.count;
    }
  }
  const MiningOptions options = plan.ToMiningOptions();
  const uint64_t min_count = options.EffectiveMinCount(covered);
  F1ScanResult f1;
  f1.num_periods = covered;
  f1.min_count = min_count;
  std::vector<Letter> frequent;
  std::vector<uint64_t> counts;
  for (const auto& [letter, count] : letter_totals) {
    if (count >= min_count) {
      frequent.push_back(letter);
      counts.push_back(count);
    }
  }
  f1.space = LetterSpace(plan.period, std::move(frequent));
  f1.letter_counts = std::move(counts);

  MiningResult& result = merged.result;
  result.stats().num_f1_letters = f1.space.size();
  result.stats().num_periods = covered;

  // Step 3: project raw segment patterns onto the global F_1 and rebuild
  // the hit store. Projections with < 2 letters carry no information
  // beyond F_1's exact counts -- the same skip rule as scan 2 of the
  // one-shot miner, which is what makes the rebuilt store answer
  // `CountSuperpatterns` identically.
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter hits_merged = registry.GetCounter("ppm.dist.merge.hits");
  obs::Counter segments_skipped =
      registry.GetCounter("ppm.hitset.segments_skipped");
  std::unique_ptr<HitStore> store = MakeHitStore(
      HitStoreKind::kHashTable, f1.space.full_mask(), f1.space.size());
  Bitset mask(f1.space.size());
  for (const ShardResult* shard : results) {
    for (const RawHit& hit : shard->hits) {
      mask.Reset();
      for (const Letter& letter : hit.letters) {
        const uint32_t index =
            f1.space.IndexOf(letter.position, letter.feature);
        if (index != Bitset::kNoBit) mask.Set(index);
      }
      if (mask.Count() >= 2) {
        store->AddHits(mask, hit.count);
        hits_merged.Inc(hit.count);
      } else {
        segments_skipped.Inc(hit.count);
      }
    }
  }

  // Step 4: the one-shot derivation over the merged counts.
  const DerivationStats derivation = DeriveFrequentPatterns(
      f1, plan.max_letters,
      [&store](const Bitset& candidate) {
        return store->CountSuperpatterns(candidate);
      },
      &result);
  PPM_RETURN_IF_ERROR(derivation.status);
  result.Canonicalize();
  result.stats().candidates_evaluated = derivation.candidates_evaluated;
  result.stats().max_level_reached = derivation.max_level_reached;
  result.stats().hit_store_entries = store->num_entries();
  // The distributed pipeline reads the series exactly once (each worker
  // scans its own range once; the merge touches no series data).
  result.stats().scans = 1;
  return merged;
}

}  // namespace

Result<MergeOutcome> MergeShardResults(const ShardPlan& plan,
                                       const std::vector<ShardResult>& results,
                                       bool allow_partial) {
  obs::TraceSpan span = obs::Tracer::Global().StartSpan("dist.merge");
  // Index the present results by shard id, validating each against the
  // plan (fingerprint, identity, range bookkeeping, canonical order).
  std::vector<const ShardResult*> by_shard(plan.shards.size(), nullptr);
  for (const ShardResult& result : results) {
    PPM_RETURN_IF_ERROR(ValidateShardResult(plan, result.shard_id, result));
    if (by_shard[result.shard_id] != nullptr) {
      return Status::Corruption("duplicate result for shard " +
                                std::to_string(result.shard_id));
    }
    by_shard[result.shard_id] = &result;
  }

  MergeOutcome outcome;
  for (uint32_t input_index = 0; input_index < plan.inputs.size();
       ++input_index) {
    std::vector<const ShardResult*> present;
    std::vector<ShardSpec> missing;
    // Plan shards are ordered by (input, segment_begin), so walking them
    // yields each input's results already sorted by range.
    for (const ShardSpec& spec : plan.shards) {
      if (spec.input_index != input_index) continue;
      if (by_shard[spec.shard_id] != nullptr) {
        present.push_back(by_shard[spec.shard_id]);
      } else {
        missing.push_back(spec);
      }
    }
    if (!missing.empty() && !allow_partial) {
      return Status::NotFound(
          "missing result for shard " +
          std::to_string(missing.front().shard_id) + " of '" +
          plan.inputs[input_index].path +
          "' (re-run, or merge with --partial ok)");
    }
    if (present.empty()) {
      if (!allow_partial) {
        return Status::NotFound("no results for input '" +
                                plan.inputs[input_index].path + "'");
      }
      // Every shard of this input failed; report it as all-missing
      // rather than invent an empty pattern set.
      MergedInput empty;
      empty.input_index = input_index;
      empty.path = plan.inputs[input_index].path;
      empty.missing = missing;
      outcome.inputs.push_back(std::move(empty));
      outcome.shards_missing += static_cast<uint32_t>(missing.size());
      continue;
    }
    PPM_ASSIGN_OR_RETURN(
        MergedInput merged,
        MergeOneInput(plan, input_index, present, missing));
    outcome.inputs.push_back(std::move(merged));
    outcome.shards_merged += static_cast<uint32_t>(present.size());
    outcome.shards_missing += static_cast<uint32_t>(missing.size());
  }
  obs::MetricsRegistry::Global()
      .GetCounter("ppm.dist.merge.shards")
      .Inc(outcome.shards_merged);
  span.End();
  return outcome;
}

Result<MergeOutcome> MergeFromDir(const ShardPlan& plan,
                                  const std::string& results_dir,
                                  bool allow_partial) {
  std::vector<ShardResult> results;
  results.reserve(plan.shards.size());
  for (const ShardSpec& spec : plan.shards) {
    Result<ShardResult> read =
        ReadShardResultFile(ShardResultPath(results_dir, spec.shard_id));
    if (read.ok()) {
      results.push_back(std::move(*read));
      continue;
    }
    // A corrupt result file is always a refusal -- merging around silent
    // damage is exactly the failure mode this subsystem exists to
    // prevent. Only a cleanly absent file can be skipped, and only under
    // --partial ok.
    if (read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
    if (!allow_partial) {
      return Status::NotFound("missing result for shard " +
                              std::to_string(spec.shard_id) +
                              " (re-run, or merge with --partial ok)");
    }
  }
  return MergeShardResults(plan, results, allow_partial);
}

}  // namespace ppm::dist
