#include "dist/worker.h"

#include <map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppm::dist {

Result<ShardResult> MineShardCounts(const tsdb::TimeSeries& series,
                                    const ShardPlan& plan, uint32_t shard_id,
                                    const SegmentHook& on_segment) {
  if (shard_id >= plan.shards.size()) {
    return Status::InvalidArgument("shard id " + std::to_string(shard_id) +
                                   " outside the plan (" +
                                   std::to_string(plan.shards.size()) +
                                   " shards)");
  }
  const ShardSpec& spec = plan.shards[shard_id];
  const PlanInput& input = plan.inputs[spec.input_index];
  if (series.length() != input.length) {
    return Status::InvalidArgument(
        "input '" + input.path + "' has " + std::to_string(series.length()) +
        " instants but the plan recorded " + std::to_string(input.length) +
        "; re-plan before mining");
  }

  obs::TraceSpan span = obs::Tracer::Global().StartSpan("dist.worker");
  obs::Counter segments_counter =
      obs::MetricsRegistry::Global().GetCounter("ppm.dist.worker.segments");

  ShardResult result;
  result.plan_fingerprint = plan.fingerprint;
  result.shard_id = shard_id;
  result.input_index = spec.input_index;
  result.segment_begin = spec.segment_begin;
  result.segment_end = spec.segment_end;
  result.symbols = series.symbols().names();

  // One pass over the range. Ordered maps give the canonical ordering
  // the result format requires for free; per-shard cardinalities are
  // the same order as |F1| and |H|, so the log factor is noise next to
  // the scan itself.
  std::map<Letter, uint64_t> letter_counts;
  std::map<std::vector<Letter>, uint64_t> hits;
  const uint32_t period = plan.period;
  std::vector<Letter> segment_letters;
  for (uint64_t segment = spec.segment_begin; segment < spec.segment_end;
       ++segment) {
    segment_letters.clear();
    const uint64_t base = segment * period;
    for (uint32_t position = 0; position < period; ++position) {
      series.at(base + position).ForEach([&](uint32_t feature) {
        // Ascending feature order within ascending positions: the
        // letter list is born canonically sorted.
        segment_letters.push_back(Letter{position, feature});
      });
    }
    for (const Letter& letter : segment_letters) ++letter_counts[letter];
    if (!segment_letters.empty()) ++hits[segment_letters];
    segments_counter.Inc();
    if (on_segment != nullptr) {
      on_segment(segment - spec.segment_begin + 1);
    }
  }

  result.letter_counts.reserve(letter_counts.size());
  for (const auto& [letter, count] : letter_counts) {
    result.letter_counts.push_back(LetterCount{letter, count});
  }
  result.hits.reserve(hits.size());
  for (auto& [letters, count] : hits) {
    result.hits.push_back(RawHit{letters, count});
  }
  span.End();
  return result;
}

}  // namespace ppm::dist
