#ifndef PPM_DIST_SHARD_PLAN_H_
#define PPM_DIST_SHARD_PLAN_H_

// The durable shard plan (`*.plan`): one CRC32C-framed manifest that
// pins everything a distributed mine depends on -- the mining
// parameters, the input series (paths and lengths), and the exact
// segment-range split. Workers and the merger both re-validate against
// it, and its body CRC (the *fingerprint*) is stamped into every shard
// result file so results can never be merged under a different plan
// than the one they were mined for. See docs/DISTRIBUTED.md.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/mining_options.h"
#include "util/status.h"

namespace ppm::dist {

/// File magic of the plan manifest.
inline constexpr char kPlanMagic[9] = "PPMDPL1\n";
inline constexpr uint32_t kPlanVersion = 1;

/// One input series of the plan. `length` is the instant count at
/// planning time; a worker that observes a different length refuses to
/// mine (the input changed under the plan).
struct PlanInput {
  std::string path;
  uint64_t length = 0;
  /// Whole periods `m` of this input (`length / period`).
  uint64_t num_segments = 0;
};

/// One unit of work: a contiguous range of whole period segments
/// `[segment_begin, segment_end)` of one input. A corpus of many series
/// is just one shard per series covering its full range.
struct ShardSpec {
  uint32_t shard_id = 0;
  uint32_t input_index = 0;
  uint64_t segment_begin = 0;
  uint64_t segment_end = 0;

  uint64_t num_segments() const { return segment_end - segment_begin; }
};

struct ShardPlan {
  uint32_t period = 0;
  double min_confidence = 0.5;
  uint64_t min_count = 0;
  uint32_t max_letters = 0;
  std::vector<PlanInput> inputs;
  std::vector<ShardSpec> shards;

  /// CRC-32C of the encoded body; populated by `WritePlanFile` /
  /// `ReadPlanFile` and stamped into shard result files.
  uint32_t fingerprint = 0;

  /// The mining parameters as `MiningOptions` (no cancel/deadline).
  MiningOptions ToMiningOptions() const;
};

/// Splits each input -- given as (path, instant count) pairs -- into up
/// to `shards_per_input` contiguous segment ranges of near-equal size
/// (fewer when an input has fewer whole segments than that). Fails with
/// `kInvalidArgument` when the options are invalid for some input or an
/// input has no whole segment.
Result<ShardPlan> PlanShards(
    const std::vector<std::pair<std::string, uint64_t>>& inputs,
    const MiningOptions& options, uint32_t shards_per_input);

/// Structural invariants: valid parameters, shard ids dense `0..n-1`,
/// ranges non-empty, in bounds, and exactly tiling each input's
/// `[0, num_segments)` with no gap or overlap.
Status ValidatePlan(const ShardPlan& plan);

std::string EncodePlanBody(const ShardPlan& plan);
Result<ShardPlan> DecodePlanBody(std::string_view body);

/// Atomic, fsync'd write of the framed manifest; sets `plan->fingerprint`.
Status WritePlanFile(ShardPlan* plan, const std::string& path);

/// Reads, CRC-verifies, decodes, and `ValidatePlan`s a manifest.
Result<ShardPlan> ReadPlanFile(const std::string& path);

/// Canonical per-shard result path: `<results_dir>/shard-<id>.result`.
std::string ShardResultPath(const std::string& results_dir,
                            uint32_t shard_id);

}  // namespace ppm::dist

#endif  // PPM_DIST_SHARD_PLAN_H_
