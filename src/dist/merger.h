#ifndef PPM_DIST_MERGER_H_
#define PPM_DIST_MERGER_H_

// Exact merge of per-shard results into the same pattern set a one-shot
// mine would produce. Letter counts and raw segment patterns are
// additive over disjoint segment ranges, so the merger:
//
//   1. cross-validates every shard result against the plan (fingerprint,
//      identity, range tiling, symbol-table agreement),
//   2. sums letter counts and derives the global `F_1` with the real
//      segment count `m` via `MiningOptions::EffectiveMinCount`,
//   3. projects each raw segment pattern onto the global letter space
//      (dropping projections with < 2 letters, exactly as scan 2 of the
//      one-shot miner does), and
//   4. reuses `DeriveFrequentPatterns` over the rebuilt hit store.
//
// Steps 2-4 are the one-shot pipeline itself, just fed from merged
// counts -- the exactness argument in docs/DISTRIBUTED.md. Any
// validation failure is a refusal (`kCorruption`), never a best-effort
// merge.

#include <cstdint>
#include <string>
#include <vector>

#include "core/mining_result.h"
#include "dist/shard_plan.h"
#include "dist/shard_result.h"
#include "tsdb/symbol_table.h"
#include "util/status.h"

namespace ppm::dist {

/// Merged output for one plan input.
struct MergedInput {
  uint32_t input_index = 0;
  std::string path;
  tsdb::SymbolTable symbols;
  MiningResult result;
  /// Segments actually covered by merged shards (== the input's segment
  /// count unless the merge is partial).
  uint64_t segments_covered = 0;
  /// Segment ranges of shards that were missing (partial merges only).
  std::vector<ShardSpec> missing;

  bool partial() const { return !missing.empty(); }
};

struct MergeOutcome {
  std::vector<MergedInput> inputs;
  uint32_t shards_merged = 0;
  uint32_t shards_missing = 0;
};

/// Merges `results` (any order; one entry per completed shard) under
/// `plan`. With `allow_partial` false every plan shard must be present;
/// with it true, missing shards degrade the affected input to a partial
/// result whose counts and confidences are exact over the covered
/// segments (`m` = covered count), with the gaps reported in `missing`.
/// Duplicate or cross-validation-failing results are `kCorruption`.
Result<MergeOutcome> MergeShardResults(const ShardPlan& plan,
                                       const std::vector<ShardResult>& results,
                                       bool allow_partial);

/// Convenience: reads every plan shard's result file from `results_dir`
/// (missing files allowed only under `allow_partial`; corrupt files are
/// always a refusal) and merges.
Result<MergeOutcome> MergeFromDir(const ShardPlan& plan,
                                  const std::string& results_dir,
                                  bool allow_partial);

}  // namespace ppm::dist

#endif  // PPM_DIST_MERGER_H_
