#include "dist/shard_plan.h"

#include <algorithm>
#include <utility>

#include "dist/framing.h"

namespace ppm::dist {

namespace {

/// Caps on decoded collection sizes, checked before any allocation.
constexpr uint32_t kMaxInputs = 1u << 20;
constexpr uint32_t kMaxShards = 1u << 24;
constexpr uint32_t kMaxPathBytes = 1u << 16;

Status PlanCorrupt(const std::string& what) {
  return Status::Corruption("shard plan: " + what);
}

}  // namespace

MiningOptions ShardPlan::ToMiningOptions() const {
  MiningOptions options;
  options.period = period;
  options.min_confidence = min_confidence;
  options.min_count = min_count;
  options.max_letters = max_letters;
  return options;
}

Result<ShardPlan> PlanShards(
    const std::vector<std::pair<std::string, uint64_t>>& inputs,
    const MiningOptions& options, uint32_t shards_per_input) {
  if (inputs.empty()) {
    return Status::InvalidArgument("plan needs at least one input");
  }
  if (shards_per_input == 0) {
    return Status::InvalidArgument("--shards-per-input must be >= 1");
  }
  ShardPlan plan;
  plan.period = options.period;
  plan.min_confidence = options.min_confidence;
  plan.min_count = options.min_count;
  plan.max_letters = options.max_letters;
  for (const auto& [path, length] : inputs) {
    PPM_RETURN_IF_ERROR(options.Validate(length));
    PlanInput input;
    input.path = path;
    input.length = length;
    input.num_segments = length / options.period;
    if (input.num_segments == 0) {
      return Status::InvalidArgument("input '" + path +
                                     "' has no whole period segment");
    }
    const uint32_t input_index = static_cast<uint32_t>(plan.inputs.size());
    // Near-equal contiguous ranges; an input shorter than the requested
    // split simply gets fewer (non-empty) shards.
    const uint64_t pieces =
        std::min<uint64_t>(shards_per_input, input.num_segments);
    for (uint64_t piece = 0; piece < pieces; ++piece) {
      ShardSpec shard;
      shard.shard_id = static_cast<uint32_t>(plan.shards.size());
      shard.input_index = input_index;
      shard.segment_begin = input.num_segments * piece / pieces;
      shard.segment_end = input.num_segments * (piece + 1) / pieces;
      plan.shards.push_back(shard);
    }
    plan.inputs.push_back(std::move(input));
  }
  PPM_RETURN_IF_ERROR(ValidatePlan(plan));
  return plan;
}

Status ValidatePlan(const ShardPlan& plan) {
  const auto invalid = [](const std::string& what) {
    return Status::InvalidArgument("shard plan: " + what);
  };
  if (plan.period == 0) return invalid("period must be >= 1");
  if (plan.min_count == 0 &&
      (plan.min_confidence <= 0.0 || plan.min_confidence > 1.0)) {
    return invalid("min_confidence must be in (0, 1]");
  }
  if (plan.inputs.empty()) return invalid("no inputs");
  if (plan.shards.empty()) return invalid("no shards");
  for (const PlanInput& input : plan.inputs) {
    if (input.num_segments != input.length / plan.period) {
      return invalid("input '" + input.path +
                     "' has inconsistent segment count");
    }
    if (input.num_segments == 0) {
      return invalid("input '" + input.path + "' has no whole segment");
    }
  }
  // Shards must tile each input's [0, num_segments) exactly. Plans list
  // shards in (input, range) order, so a single linear walk checks ids,
  // bounds, and gap/overlap at once.
  uint32_t expected_input = 0;
  uint64_t expected_begin = 0;
  for (size_t i = 0; i < plan.shards.size(); ++i) {
    const ShardSpec& shard = plan.shards[i];
    if (shard.shard_id != i) return invalid("shard ids are not dense");
    if (shard.input_index >= plan.inputs.size()) {
      return invalid("shard " + std::to_string(i) +
                     " names a missing input");
    }
    if (shard.input_index != expected_input) {
      if (shard.input_index != expected_input + 1 ||
          expected_begin !=
              plan.inputs[expected_input].num_segments) {
        return invalid("shards do not tile input " +
                       std::to_string(expected_input));
      }
      expected_input = shard.input_index;
      expected_begin = 0;
    }
    if (shard.segment_begin != expected_begin ||
        shard.segment_end <= shard.segment_begin) {
      return invalid("shard " + std::to_string(i) +
                     " breaks the segment tiling");
    }
    if (shard.segment_end > plan.inputs[shard.input_index].num_segments) {
      return invalid("shard " + std::to_string(i) +
                     " runs past its input");
    }
    expected_begin = shard.segment_end;
  }
  if (expected_input != plan.inputs.size() - 1 ||
      expected_begin != plan.inputs.back().num_segments) {
    return invalid("shards do not cover the last input");
  }
  return Status::OK();
}

std::string EncodePlanBody(const ShardPlan& plan) {
  std::string body;
  PutU32(&body, kPlanVersion);
  PutU32(&body, plan.period);
  PutF64(&body, plan.min_confidence);
  PutU64(&body, plan.min_count);
  PutU32(&body, plan.max_letters);
  PutU32(&body, static_cast<uint32_t>(plan.inputs.size()));
  for (const PlanInput& input : plan.inputs) {
    PutString(&body, input.path);
    PutU64(&body, input.length);
    PutU64(&body, input.num_segments);
  }
  PutU32(&body, static_cast<uint32_t>(plan.shards.size()));
  for (const ShardSpec& shard : plan.shards) {
    PutU32(&body, shard.shard_id);
    PutU32(&body, shard.input_index);
    PutU64(&body, shard.segment_begin);
    PutU64(&body, shard.segment_end);
  }
  return body;
}

Result<ShardPlan> DecodePlanBody(std::string_view body) {
  BodyReader reader(body);
  ShardPlan plan;
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) return PlanCorrupt("truncated version");
  if (version != kPlanVersion) {
    return PlanCorrupt("unsupported version " + std::to_string(version));
  }
  if (!reader.ReadU32(&plan.period) ||
      !reader.ReadF64(&plan.min_confidence) ||
      !reader.ReadU64(&plan.min_count) ||
      !reader.ReadU32(&plan.max_letters)) {
    return PlanCorrupt("truncated parameters");
  }
  uint32_t num_inputs = 0;
  if (!reader.ReadU32(&num_inputs)) return PlanCorrupt("truncated inputs");
  if (num_inputs > kMaxInputs || reader.remaining() / 20 < num_inputs) {
    return PlanCorrupt("implausible input count");
  }
  plan.inputs.resize(num_inputs);
  for (PlanInput& input : plan.inputs) {
    if (!reader.ReadString(&input.path, kMaxPathBytes) ||
        !reader.ReadU64(&input.length) ||
        !reader.ReadU64(&input.num_segments)) {
      return PlanCorrupt("truncated input entry");
    }
  }
  uint32_t num_shards = 0;
  if (!reader.ReadU32(&num_shards)) return PlanCorrupt("truncated shards");
  if (num_shards > kMaxShards || reader.remaining() / 24 < num_shards) {
    return PlanCorrupt("implausible shard count");
  }
  plan.shards.resize(num_shards);
  for (ShardSpec& shard : plan.shards) {
    if (!reader.ReadU32(&shard.shard_id) ||
        !reader.ReadU32(&shard.input_index) ||
        !reader.ReadU64(&shard.segment_begin) ||
        !reader.ReadU64(&shard.segment_end)) {
      return PlanCorrupt("truncated shard entry");
    }
  }
  if (!reader.exhausted()) return PlanCorrupt("trailing bytes");
  return plan;
}

Status WritePlanFile(ShardPlan* plan, const std::string& path) {
  PPM_RETURN_IF_ERROR(ValidatePlan(*plan));
  const std::string body = EncodePlanBody(*plan);
  plan->fingerprint = BodyFingerprint(body);
  return WriteFramedFile(path, kPlanMagic, body);
}

Result<ShardPlan> ReadPlanFile(const std::string& path) {
  PPM_ASSIGN_OR_RETURN(const std::string body,
                       ReadFramedFile(path, kPlanMagic));
  PPM_ASSIGN_OR_RETURN(ShardPlan plan, DecodePlanBody(body));
  const Status valid = ValidatePlan(plan);
  if (!valid.ok()) {
    // A structurally invalid plan behind a passing CRC means the file
    // was hand-built or tampered with wholesale; surface as corruption
    // so callers treat it like any other unusable manifest.
    return Status::Corruption(valid.message());
  }
  plan.fingerprint = BodyFingerprint(body);
  return plan;
}

std::string ShardResultPath(const std::string& results_dir,
                            uint32_t shard_id) {
  return results_dir + "/shard-" + std::to_string(shard_id) + ".result";
}

}  // namespace ppm::dist
