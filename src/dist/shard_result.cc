#include "dist/shard_result.h"

#include <algorithm>

#include "dist/framing.h"

namespace ppm::dist {

namespace {

constexpr uint32_t kMaxSymbols = 1u << 24;
constexpr uint32_t kMaxSymbolNameBytes = 1u << 20;
constexpr uint32_t kMaxLetters = 1u << 24;
constexpr uint64_t kMaxHits = 1ull << 32;

Status ResultCorrupt(const std::string& what) {
  return Status::Corruption("shard result: " + what);
}

}  // namespace

std::string EncodeShardResultBody(const ShardResult& result) {
  std::string body;
  PutU32(&body, kResultVersion);
  PutU32(&body, result.plan_fingerprint);
  PutU32(&body, result.shard_id);
  PutU32(&body, result.input_index);
  PutU64(&body, result.segment_begin);
  PutU64(&body, result.segment_end);
  PutU32(&body, static_cast<uint32_t>(result.symbols.size()));
  for (const std::string& name : result.symbols) PutString(&body, name);
  PutU32(&body, static_cast<uint32_t>(result.letter_counts.size()));
  for (const LetterCount& entry : result.letter_counts) {
    PutU32(&body, entry.letter.position);
    PutU32(&body, entry.letter.feature);
    PutU64(&body, entry.count);
  }
  PutU64(&body, result.hits.size());
  for (const RawHit& hit : result.hits) {
    PutU32(&body, static_cast<uint32_t>(hit.letters.size()));
    for (const Letter& letter : hit.letters) {
      PutU32(&body, letter.position);
      PutU32(&body, letter.feature);
    }
    PutU64(&body, hit.count);
  }
  return body;
}

Result<ShardResult> DecodeShardResultBody(std::string_view body) {
  BodyReader reader(body);
  ShardResult result;
  uint32_t version = 0;
  if (!reader.ReadU32(&version)) return ResultCorrupt("truncated version");
  if (version != kResultVersion) {
    return ResultCorrupt("unsupported version " + std::to_string(version));
  }
  if (!reader.ReadU32(&result.plan_fingerprint) ||
      !reader.ReadU32(&result.shard_id) ||
      !reader.ReadU32(&result.input_index) ||
      !reader.ReadU64(&result.segment_begin) ||
      !reader.ReadU64(&result.segment_end)) {
    return ResultCorrupt("truncated header");
  }
  uint32_t num_symbols = 0;
  if (!reader.ReadU32(&num_symbols)) {
    return ResultCorrupt("truncated symbol count");
  }
  if (num_symbols > kMaxSymbols || reader.remaining() / 4 < num_symbols) {
    return ResultCorrupt("implausible symbol count");
  }
  result.symbols.resize(num_symbols);
  for (std::string& name : result.symbols) {
    if (!reader.ReadString(&name, kMaxSymbolNameBytes)) {
      return ResultCorrupt("truncated symbol name");
    }
  }
  uint32_t num_letters = 0;
  if (!reader.ReadU32(&num_letters)) {
    return ResultCorrupt("truncated letter count");
  }
  if (num_letters > kMaxLetters || reader.remaining() / 16 < num_letters) {
    return ResultCorrupt("implausible letter count");
  }
  result.letter_counts.resize(num_letters);
  for (LetterCount& entry : result.letter_counts) {
    if (!reader.ReadU32(&entry.letter.position) ||
        !reader.ReadU32(&entry.letter.feature) ||
        !reader.ReadU64(&entry.count)) {
      return ResultCorrupt("truncated letter entry");
    }
  }
  uint64_t num_hits = 0;
  if (!reader.ReadU64(&num_hits)) return ResultCorrupt("truncated hit count");
  if (num_hits > kMaxHits || reader.remaining() / 12 < num_hits) {
    return ResultCorrupt("implausible hit count");
  }
  result.hits.resize(num_hits);
  for (RawHit& hit : result.hits) {
    uint32_t hit_letters = 0;
    if (!reader.ReadU32(&hit_letters)) {
      return ResultCorrupt("truncated hit entry");
    }
    if (hit_letters > kMaxLetters || reader.remaining() / 8 < hit_letters) {
      return ResultCorrupt("implausible hit size");
    }
    hit.letters.resize(hit_letters);
    for (Letter& letter : hit.letters) {
      if (!reader.ReadU32(&letter.position) ||
          !reader.ReadU32(&letter.feature)) {
        return ResultCorrupt("truncated hit letters");
      }
    }
    if (!reader.ReadU64(&hit.count)) return ResultCorrupt("truncated hit");
  }
  if (!reader.exhausted()) return ResultCorrupt("trailing bytes");
  return result;
}

Status WriteShardResultFile(const ShardResult& result,
                            const std::string& path) {
  return WriteFramedFile(path, kResultMagic, EncodeShardResultBody(result));
}

Result<ShardResult> ReadShardResultFile(const std::string& path) {
  PPM_ASSIGN_OR_RETURN(const std::string body,
                       ReadFramedFile(path, kResultMagic));
  return DecodeShardResultBody(body);
}

Status ValidateShardResult(const ShardPlan& plan, uint32_t shard_id,
                           const ShardResult& result) {
  if (shard_id >= plan.shards.size()) {
    return ResultCorrupt("shard id " + std::to_string(shard_id) +
                         " outside the plan");
  }
  const ShardSpec& spec = plan.shards[shard_id];
  if (result.plan_fingerprint != plan.fingerprint) {
    return ResultCorrupt("fingerprint mismatch: result was mined under a "
                         "different plan");
  }
  if (result.shard_id != shard_id || result.input_index != spec.input_index ||
      result.segment_begin != spec.segment_begin ||
      result.segment_end != spec.segment_end) {
    return ResultCorrupt("shard " + std::to_string(shard_id) +
                         " identity does not match the plan");
  }
  // Boundary bookkeeping: letters in range, counts bounded by the range
  // size, canonical (strictly increasing) ordering everywhere. Raw hit
  // multiplicities must also total at most the range's segment count.
  const uint64_t segments = spec.num_segments();
  const Letter* previous = nullptr;
  for (const LetterCount& entry : result.letter_counts) {
    if (entry.letter.position >= plan.period) {
      return ResultCorrupt("letter position outside the period");
    }
    if (entry.letter.feature >= result.symbols.size()) {
      return ResultCorrupt("letter feature outside the symbol table");
    }
    if (entry.count == 0 || entry.count > segments) {
      return ResultCorrupt("letter count outside [1, segments]");
    }
    if (previous != nullptr && !(*previous < entry.letter)) {
      return ResultCorrupt("letter counts are not in canonical order");
    }
    previous = &entry.letter;
  }
  uint64_t hit_total = 0;
  const std::vector<Letter>* previous_hit = nullptr;
  for (const RawHit& hit : result.hits) {
    if (hit.letters.empty()) {
      return ResultCorrupt("raw hit with no letters");
    }
    for (size_t i = 0; i < hit.letters.size(); ++i) {
      if (hit.letters[i].position >= plan.period ||
          hit.letters[i].feature >= result.symbols.size()) {
        return ResultCorrupt("raw hit letter out of range");
      }
      if (i > 0 && !(hit.letters[i - 1] < hit.letters[i])) {
        return ResultCorrupt("raw hit letters are not in canonical order");
      }
    }
    if (hit.count == 0 || hit.count > segments) {
      return ResultCorrupt("raw hit count outside [1, segments]");
    }
    hit_total += hit.count;
    if (hit_total > segments) {
      return ResultCorrupt("raw hit counts exceed the segment range");
    }
    if (previous_hit != nullptr &&
        !std::lexicographical_compare(previous_hit->begin(),
                                      previous_hit->end(),
                                      hit.letters.begin(),
                                      hit.letters.end())) {
      return ResultCorrupt("raw hits are not in canonical order");
    }
    previous_hit = &hit.letters;
  }
  return Status::OK();
}

}  // namespace ppm::dist
