#ifndef PPM_DIST_SHARD_RESULT_H_
#define PPM_DIST_SHARD_RESULT_H_

// The per-shard result file (`shard-<id>.result`): the *raw* sufficient
// statistics of one shard's segment range, CRC32C-framed and written
// atomically by the worker.
//
// Exactness hinges on what "raw" means here. A shard cannot compute its
// own `F_1` -- the frequency threshold depends on the *global* segment
// count `m`, which no single shard knows. So workers record, per shard:
//
//   * the exact count of every letter `(position, feature)` seen in the
//     range (no threshold applied), and
//   * the multiset of *unprojected* per-segment letter patterns -- for
//     each segment, the full set of letters present, keyed canonically.
//
// Both are additive over disjoint segment ranges. The merger sums them,
// derives the global `F_1` with the real `m`, projects each raw segment
// pattern onto the global letter space, and reuses the one-shot
// derivation -- making the merged pattern set field-identical to a
// single-process mine by construction (docs/DISTRIBUTED.md).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/letter_space.h"
#include "dist/shard_plan.h"
#include "util/status.h"

namespace ppm::dist {

/// File magic of shard result files.
inline constexpr char kResultMagic[9] = "PPMDRS1\n";
inline constexpr uint32_t kResultVersion = 1;

/// Exact occurrence count of one letter over the shard's segments.
struct LetterCount {
  Letter letter;
  uint64_t count = 0;
};

/// One distinct raw segment pattern: the letters present in a segment
/// (canonically sorted, no threshold or projection applied) and how many
/// of the shard's segments showed exactly that set.
struct RawHit {
  std::vector<Letter> letters;
  uint64_t count = 0;
};

struct ShardResult {
  /// `ShardPlan::fingerprint` of the plan this shard was mined under.
  uint32_t plan_fingerprint = 0;
  uint32_t shard_id = 0;
  uint32_t input_index = 0;
  uint64_t segment_begin = 0;
  uint64_t segment_end = 0;
  /// The input's full symbol table in id order, so letters are
  /// interpretable without reloading the series; the merger
  /// cross-validates that all shards of an input agree on it.
  std::vector<std::string> symbols;
  /// Sorted canonically by letter; every count >= 1.
  std::vector<LetterCount> letter_counts;
  /// Sorted canonically by letter list; every count >= 1. Segments with
  /// no letters at all contribute to no entry (their count is implied by
  /// the range size).
  std::vector<RawHit> hits;

  uint64_t num_segments() const { return segment_end - segment_begin; }
};

std::string EncodeShardResultBody(const ShardResult& result);
Result<ShardResult> DecodeShardResultBody(std::string_view body);

/// Atomic, fsync'd write of the framed result file.
Status WriteShardResultFile(const ShardResult& result,
                            const std::string& path);

/// Reads, CRC-verifies, and decodes one result file (`kNotFound` /
/// `kCorruption`). Structural validation against a plan is separate --
/// see `ValidateShardResult`.
Result<ShardResult> ReadShardResultFile(const std::string& path);

/// Cross-validates `result` against the plan's shard `shard_id`:
/// fingerprint binding, shard identity, segment-range bookkeeping, and
/// canonical ordering of the recorded counts. `kCorruption` on any
/// mismatch -- the coordinator treats such a file as a failed shard and
/// the merger refuses to merge it.
Status ValidateShardResult(const ShardPlan& plan, uint32_t shard_id,
                           const ShardResult& result);

}  // namespace ppm::dist

#endif  // PPM_DIST_SHARD_RESULT_H_
