#ifndef PPM_ANALYSIS_PERIOD_SUGGEST_H_
#define PPM_ANALYSIS_PERIOD_SUGGEST_H_

#include <cstdint>
#include <vector>

#include "tsdb/symbol_table.h"
#include "tsdb/time_series.h"
#include "util/status.h"

namespace ppm::analysis {

/// Score of one candidate period.
struct PeriodScore {
  uint32_t period = 0;
  /// Concentration of the best letter: its 1-pattern confidence minus the
  /// feature's overall per-instant density. A feature that is simply always
  /// on scores ~0 at every period; a feature locked to one offset of the
  /// true period scores near 1 there and near 0 elsewhere.
  double concentration = 0.0;
  /// The best letter's plain 1-pattern confidence at this period.
  double confidence = 0.0;
  /// The best letter.
  uint32_t position = 0;
  tsdb::FeatureId feature = 0;
};

/// Ranks candidate periods in `[period_low, period_high]` by the strongest
/// letter concentration, computed from per-period position histograms in a
/// single pass over the series. This is a *suggestion* heuristic to narrow
/// the range handed to `MineMultiPeriodShared`; it deliberately reuses the
/// paper's own F_1 statistic rather than spectral methods (Section 1
/// explains why FFT is inapplicable to partial periodicity).
///
/// Results are sorted by descending concentration. Periods longer than the
/// series (or with fewer than 2 whole segments) are skipped.
Result<std::vector<PeriodScore>> SuggestPeriods(const tsdb::TimeSeries& series,
                                                uint32_t period_low,
                                                uint32_t period_high);

/// Like `SuggestPeriods` but with one entry per (period, feature) -- each
/// feature's best offset at each period -- so a weaker periodic signal is
/// not shadowed by a stronger one at the same period (e.g. a weekly traffic
/// pattern hiding behind a daily batch job at period 168). Sorted like
/// `SuggestPeriods`. Feed the result through `FundamentalPeriods` to
/// collapse each feature's harmonics.
Result<std::vector<PeriodScore>> SuggestPeriodsPerFeature(
    const tsdb::TimeSeries& series, uint32_t period_low, uint32_t period_high);

/// Collapses harmonics in a `SuggestPeriods` ranking: a period is dropped
/// when one of its proper divisors is also in the list with concentration
/// within `tolerance` (a pattern at period p trivially recurs at 2p, 3p, …,
/// and the smaller m at the multiple makes its sampled score noisier, often
/// nominally higher). Returns survivors in the original ranked order.
std::vector<PeriodScore> FundamentalPeriods(
    const std::vector<PeriodScore>& scores, double tolerance = 0.05);

/// Lag-autocorrelation of one feature's occurrence indicator: for each lag
/// `p` in `[lag_low, lag_high]`, the fraction of the feature's occurrences
/// that recur exactly `p` instants later. A complementary single-feature
/// diagnostic; peaks suggest candidate periods.
Result<std::vector<double>> OccurrenceAutocorrelation(
    const tsdb::TimeSeries& series, tsdb::FeatureId feature, uint32_t lag_low,
    uint32_t lag_high);

}  // namespace ppm::analysis

#endif  // PPM_ANALYSIS_PERIOD_SUGGEST_H_
