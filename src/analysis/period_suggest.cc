#include "analysis/period_suggest.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ppm::analysis {

namespace {

/// Quantized ranking: concentration rounded to 2 decimals (sampling noise
/// grows as m shrinks), ties broken toward the smaller period.
void SortScores(std::vector<PeriodScore>* scores) {
  std::stable_sort(scores->begin(), scores->end(),
                   [](const PeriodScore& a, const PeriodScore& b) {
                     const int64_t qa = std::llround(a.concentration * 100);
                     const int64_t qb = std::llround(b.concentration * 100);
                     if (qa != qb) return qa > qb;
                     return a.period < b.period;
                   });
}

/// One `PeriodScore` per (period, feature): that feature's best offset at
/// that period. Shared by both public entry points.
Result<std::vector<PeriodScore>> ComputePerFeature(
    const tsdb::TimeSeries& series, uint32_t period_low,
    uint32_t period_high) {
  if (period_low < 1) {
    return Status::InvalidArgument("period_low must be positive");
  }
  if (period_high < period_low) {
    return Status::InvalidArgument("period_high below period_low");
  }
  if (series.length() == 0) {
    return Status::InvalidArgument("empty series");
  }

  // Overall per-feature densities (one pass).
  std::map<tsdb::FeatureId, uint64_t> overall;
  for (const tsdb::FeatureSet& instant : series.instants()) {
    instant.ForEach([&overall](uint32_t feature) { ++overall[feature]; });
  }
  const double length = static_cast<double>(series.length());

  // Per-period position histograms, the structure of scan 1 of
  // Algorithm 3.4.
  std::vector<PeriodScore> entries;
  for (uint32_t period = period_low; period <= period_high; ++period) {
    const uint64_t m = series.length() / period;
    if (m < 2) continue;
    std::vector<std::map<tsdb::FeatureId, uint64_t>> counts(period);
    const uint64_t covered = m * period;
    for (uint64_t t = 0; t < covered; ++t) {
      auto& position_counts = counts[t % period];
      series.at(t).ForEach(
          [&position_counts](uint32_t feature) { ++position_counts[feature]; });
    }
    std::map<tsdb::FeatureId, PeriodScore> best_of_feature;
    for (uint32_t position = 0; position < period; ++position) {
      for (const auto& [feature, count] : counts[position]) {
        const double confidence =
            static_cast<double>(count) / static_cast<double>(m);
        const double density = static_cast<double>(overall[feature]) / length;
        const double concentration = confidence - density;
        PeriodScore& best = best_of_feature[feature];
        if (best.period == 0 || concentration > best.concentration) {
          best.period = period;
          best.concentration = concentration;
          best.confidence = confidence;
          best.position = position;
          best.feature = feature;
        }
      }
    }
    for (const auto& [feature, score] : best_of_feature) {
      if (score.concentration >= 0.0) entries.push_back(score);
    }
  }
  return entries;
}

}  // namespace

Result<std::vector<PeriodScore>> SuggestPeriods(const tsdb::TimeSeries& series,
                                                uint32_t period_low,
                                                uint32_t period_high) {
  PPM_ASSIGN_OR_RETURN(const std::vector<PeriodScore> entries,
                       ComputePerFeature(series, period_low, period_high));
  std::map<uint32_t, PeriodScore> best_of_period;
  for (const PeriodScore& entry : entries) {
    PeriodScore& best = best_of_period[entry.period];
    if (best.period == 0 || entry.concentration > best.concentration) {
      best = entry;
    }
  }
  std::vector<PeriodScore> scores;
  scores.reserve(best_of_period.size());
  for (const auto& [period, score] : best_of_period) scores.push_back(score);
  SortScores(&scores);
  return scores;
}

Result<std::vector<PeriodScore>> SuggestPeriodsPerFeature(
    const tsdb::TimeSeries& series, uint32_t period_low,
    uint32_t period_high) {
  PPM_ASSIGN_OR_RETURN(std::vector<PeriodScore> entries,
                       ComputePerFeature(series, period_low, period_high));
  SortScores(&entries);
  return entries;
}

std::vector<PeriodScore> FundamentalPeriods(
    const std::vector<PeriodScore>& scores, double tolerance) {
  // Keyed by (period, feature): works for both the aggregate and the
  // per-feature rankings.
  std::map<std::pair<uint32_t, tsdb::FeatureId>, PeriodScore> score_of;
  for (const PeriodScore& score : scores) {
    score_of.emplace(std::make_pair(score.period, score.feature), score);
  }
  // q is a harmonic of divisor d when d already explains q's best letter:
  // same feature, same offset modulo d, comparable concentration. A multiple
  // whose letter is a *different* signal (e.g. a weekly pattern on top of a
  // daily one) is kept.
  const auto explains = [tolerance](const PeriodScore& d,
                                    const PeriodScore& q) {
    return d.feature == q.feature && q.position % d.period == d.position &&
           d.concentration >= q.concentration - tolerance;
  };
  std::vector<PeriodScore> fundamentals;
  for (const PeriodScore& score : scores) {
    bool harmonic = false;
    for (uint32_t divisor = 1; divisor * divisor <= score.period; ++divisor) {
      if (score.period % divisor != 0) continue;
      for (const uint32_t d : {divisor, score.period / divisor}) {
        if (d == score.period || d < 2) continue;
        const auto it = score_of.find(std::make_pair(d, score.feature));
        if (it != score_of.end() && explains(it->second, score)) {
          harmonic = true;
        }
      }
      if (harmonic) break;
    }
    if (!harmonic) fundamentals.push_back(score);
  }
  return fundamentals;
}

Result<std::vector<double>> OccurrenceAutocorrelation(
    const tsdb::TimeSeries& series, tsdb::FeatureId feature, uint32_t lag_low,
    uint32_t lag_high) {
  if (lag_low < 1) return Status::InvalidArgument("lag_low must be positive");
  if (lag_high < lag_low) {
    return Status::InvalidArgument("lag_high below lag_low");
  }
  if (lag_high >= series.length()) {
    return Status::InvalidArgument("lag_high exceeds series length");
  }

  std::vector<uint64_t> occurrences;
  for (uint64_t t = 0; t < series.length(); ++t) {
    if (series.at(t).Test(feature)) occurrences.push_back(t);
  }

  std::vector<double> result;
  result.reserve(lag_high - lag_low + 1);
  for (uint32_t lag = lag_low; lag <= lag_high; ++lag) {
    uint64_t recur = 0;
    uint64_t eligible = 0;
    for (const uint64_t t : occurrences) {
      if (t + lag >= series.length()) continue;
      ++eligible;
      if (series.at(t + lag).Test(feature)) ++recur;
    }
    result.push_back(eligible > 0 ? static_cast<double>(recur) /
                                        static_cast<double>(eligible)
                                  : 0.0);
  }
  return result;
}

}  // namespace ppm::analysis
