#ifndef PPM_OBS_RUN_REPORT_H_
#define PPM_OBS_RUN_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ppm::obs {

/// Structured record of one run (a mine, a bench sweep, a stream session):
/// string metadata, pre-serialized JSON sections from higher layers (e.g.
/// `MiningStats::ToJson()` -- obs cannot depend on core), a metrics
/// snapshot, and the span tree. Serializes to machine-readable JSON and a
/// human-readable text block; this is the format every BENCH_*.json and
/// `--stats-json` file uses.
class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  void AddMeta(std::string key, std::string value);
  /// Numeric convenience; stored as the decimal string.
  void AddMeta(std::string key, uint64_t value);
  /// Attaches `json` (already serialized, spliced verbatim) as section `key`.
  void AddRawSection(std::string key, std::string json);
  void SetMetrics(MetricsSnapshot metrics) { metrics_ = std::move(metrics); }
  void SetSpans(std::vector<TraceEvent> spans) { spans_ = std::move(spans); }

  /// Convenience: captures `MetricsRegistry::Global()` + `Tracer::Global()`.
  void CaptureGlobal();

  const std::string& name() const { return name_; }

  /// `{"run":...,"meta":{...},"sections":{...},"metrics":{...},"spans":[...]}`
  std::string ToJson() const;

  /// Indented, aligned plain text for terminals and logs.
  std::string ToText() const;

  Status WriteJson(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::string>> sections_;
  MetricsSnapshot metrics_;
  std::vector<TraceEvent> spans_;
};

}  // namespace ppm::obs

#endif  // PPM_OBS_RUN_REPORT_H_
