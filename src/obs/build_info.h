#ifndef PPM_OBS_BUILD_INFO_H_
#define PPM_OBS_BUILD_INFO_H_

#include <cstdint>
#include <string>

namespace ppm::obs {

class RunReport;

/// Machine/build fingerprint attached to every RunReport so any
/// `--stats-json` or `BENCH_*.json` file is attributable to the binary and
/// host that produced it (docs/BENCHMARKING.md).
struct BuildInfo {
  std::string git_sha;     // configure-time HEAD, "-dirty" suffix if modified
  std::string compiler;    // e.g. "gcc 12.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string cxx_flags;   // CMAKE_CXX_FLAGS at configure time
  std::string sanitizer;   // PPM_SANITIZE value, empty when none
  bool assertions = false; // true unless compiled with NDEBUG
  uint32_t num_cores = 0;  // std::thread::hardware_concurrency
};

const BuildInfo& GetBuildInfo();

/// Adds the fingerprint to `report` as `build.git_sha`, `build.compiler`,
/// `build.build_type`, `build.cxx_flags`, `build.sanitizer`,
/// `build.assertions`, and `machine.cores` meta entries.
void AddBuildMeta(RunReport* report);

}  // namespace ppm::obs

#endif  // PPM_OBS_BUILD_INFO_H_
