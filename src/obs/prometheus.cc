// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot.
// Compiled in both the real and PPM_OBS_DISABLED builds: it renders whatever
// snapshot it is handed, and the no-op registry only ever hands it an empty
// one.

#include <string>

#include "obs/metrics.h"

namespace ppm::obs {

namespace {

/// Prometheus metric names admit `[a-zA-Z_:][a-zA-Z0-9_:]*`; everything
/// else (the library's `.` separators in particular) maps to `_`.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

void AppendSample(std::string* out, const std::string& name, uint64_t value) {
  *out += name;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = SanitizeName(name);
    out += "# TYPE " + prom + " counter\n";
    AppendSample(&out, prom, value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = SanitizeName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendSample(&out, prom, value);
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = SanitizeName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets. Bucket i counts values of bit width i, so its
    // inclusive upper edge (2^i - 1) is the Prometheus `le` bound. Trailing
    // empty buckets collapse into the +Inf bucket.
    size_t last = data.buckets.size();
    while (last > 0 && data.buckets[last - 1] == 0) --last;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < last; ++i) {
      cumulative += data.buckets[i];
      out += prom + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(static_cast<uint32_t>(i))) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) + "\n";
    AppendSample(&out, prom + "_sum", data.sum);
    AppendSample(&out, prom + "_count", data.count);
  }
  return out;
}

}  // namespace ppm::obs
