#include "obs/run_report.h"

#include <cstdio>
#include <fstream>

#include "obs/json_writer.h"

namespace ppm::obs {

void RunReport::AddMeta(std::string key, std::string value) {
  meta_.emplace_back(std::move(key), std::move(value));
}

void RunReport::AddMeta(std::string key, uint64_t value) {
  meta_.emplace_back(std::move(key), std::to_string(value));
}

void RunReport::AddRawSection(std::string key, std::string json) {
  sections_.emplace_back(std::move(key), std::move(json));
}

void RunReport::CaptureGlobal() {
  metrics_ = MetricsRegistry::Global().Snapshot();
  spans_ = Tracer::Global().events();
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("run").String(name_);
  w.Key("meta").BeginObject();
  for (const auto& [key, value] : meta_) w.Key(key).String(value);
  w.EndObject();
  w.Key("sections").BeginObject();
  for (const auto& [key, json] : sections_) w.Key(key).Raw(json);
  w.EndObject();
  w.Key("metrics").Raw(metrics_.ToJson());
  w.Key("spans").BeginArray();
  for (const TraceEvent& span : spans_) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("start_us").Uint(span.start_us);
    w.Key("dur_us").Uint(span.dur_us);
    w.Key("depth").Uint(span.depth);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RunReport::ToText() const {
  std::string out = "== run: " + name_ + " ==\n";
  for (const auto& [key, value] : meta_) {
    out += "  " + key + ": " + value + "\n";
  }
  for (const auto& [key, json] : sections_) {
    out += "  [" + key + "] " + json + "\n";
  }
  if (!metrics_.counters.empty()) {
    out += "  counters:\n";
    for (const auto& [name, value] : metrics_.counters) {
      out += "    " + name + " = " + std::to_string(value) + "\n";
    }
  }
  if (!metrics_.gauges.empty()) {
    out += "  gauges:\n";
    for (const auto& [name, value] : metrics_.gauges) {
      out += "    " + name + " = " + std::to_string(value) + "\n";
    }
  }
  if (!metrics_.histograms.empty()) {
    out += "  histograms:\n";
    for (const auto& [name, data] : metrics_.histograms) {
      char buffer[128];
      std::snprintf(buffer, sizeof(buffer),
                    " = count %llu, mean %.1f, p99 %llu, max %llu\n",
                    static_cast<unsigned long long>(data.count), data.Mean(),
                    static_cast<unsigned long long>(data.ApproxQuantile(0.99)),
                    static_cast<unsigned long long>(data.max));
      out += "    " + name + buffer;
    }
  }
  if (!spans_.empty()) {
    out += "  spans:\n";
    for (const TraceEvent& span : spans_) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), " %.3f ms\n",
                    static_cast<double>(span.dur_us) * 1e-3);
      out += "    " + std::string(2 * span.depth, ' ') + span.name + buffer;
    }
  }
  return out;
}

Status RunReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << ToJson() << "\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace ppm::obs
