#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace ppm::obs {

void JsonWriter::AppendEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) out_ += ',';
    scope_has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  scope_has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  scope_has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  out_ += '"';
  AppendEscaped(&out_, key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  AppendEscaped(&out_, value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace ppm::obs
