#include "obs/resource.h"

#include <ctime>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <cstdio>
#endif

namespace ppm::obs {

namespace {

uint64_t TimevalToMicros(const timeval& tv) {
  return static_cast<uint64_t>(tv.tv_sec) * 1000000ull +
         static_cast<uint64_t>(tv.tv_usec);
}

}  // namespace

ResourceUsage ReadResourceUsage() {
  ResourceUsage usage;
#if defined(__linux__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    usage.rss_hwm_bytes = static_cast<uint64_t>(ru.ru_maxrss);  // bytes
#else
    usage.rss_hwm_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024;  // KiB
#endif
    usage.cpu_user_us = TimevalToMicros(ru.ru_utime);
    usage.cpu_system_us = TimevalToMicros(ru.ru_stime);
  }
#endif
#if defined(__linux__)
  // /proc/self/statm field 2 is the resident set in pages.
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    unsigned long long size_pages = 0, resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages) == 2) {
      usage.rss_bytes = static_cast<uint64_t>(resident_pages) *
                        static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
    }
    std::fclose(statm);
  }
#endif
  return usage;
}

void RecordResourceMetrics() {
#ifndef PPM_OBS_DISABLED
  const ResourceUsage usage = ReadResourceUsage();
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("ppm.resource.rss_hwm_bytes").Set(usage.rss_hwm_bytes);
  registry.GetGauge("ppm.resource.rss_bytes").Set(usage.rss_bytes);
  registry.GetGauge("ppm.resource.cpu_user_us").Set(usage.cpu_user_us);
  registry.GetGauge("ppm.resource.cpu_system_us").Set(usage.cpu_system_us);
#endif
}

#ifndef PPM_OBS_DISABLED

namespace {

uint64_t MonotonicMicros() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

uint64_t ProcessCpuMicros() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

}  // namespace

PhaseTimer::PhaseTimer(std::string_view name)
    : name_(name),
      wall_start_us_(MonotonicMicros()),
      cpu_start_us_(ProcessCpuMicros()) {}

void PhaseTimer::End() {
  if (ended_) return;
  ended_ = true;
  const uint64_t wall_us = MonotonicMicros() - wall_start_us_;
  const uint64_t cpu_us = ProcessCpuMicros() - cpu_start_us_;
  auto& registry = MetricsRegistry::Global();
  registry.GetHistogram("ppm.phase." + name_ + ".wall_us").Observe(wall_us);
  registry.GetHistogram("ppm.phase." + name_ + ".cpu_us").Observe(cpu_us);
}

#endif  // PPM_OBS_DISABLED

}  // namespace ppm::obs
