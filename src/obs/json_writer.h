#ifndef PPM_OBS_JSON_WRITER_H_
#define PPM_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppm::obs {

/// Minimal streaming JSON writer (objects, arrays, scalars) used by the
/// observability layer for run reports, trace files, and bench output.
///
/// The writer manages commas and nesting; callers are responsible for
/// well-formedness beyond that (e.g. emitting a key before each object
/// value). No dependencies beyond the standard library, no DOM.
///
///   JsonWriter w;
///   w.BeginObject().Key("scans").Uint(2).Key("algo").String("hit-set");
///   w.EndObject();
///   w.str();  // {"scans":2,"algo":"hit-set"}
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key (quoted + escaped) and the following colon.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  /// Doubles print with enough digits to round-trip; NaN and infinity are
  /// not representable in JSON and are emitted as null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices pre-serialized JSON in value position, verbatim.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

  /// Appends `text` with JSON string escaping (no surrounding quotes).
  static void AppendEscaped(std::string* out, std::string_view text);

 private:
  /// Emits the separating comma when a value follows a prior value, and
  /// marks the enclosing scope as populated.
  void BeforeValue();

  std::string out_;
  /// One flag per open scope: true once the scope holds a value.
  std::vector<bool> scope_has_value_;
  /// True immediately after `Key()`, suppressing the value comma.
  bool after_key_ = false;
};

}  // namespace ppm::obs

#endif  // PPM_OBS_JSON_WRITER_H_
