#ifndef PPM_OBS_RESOURCE_H_
#define PPM_OBS_RESOURCE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace ppm::obs {

/// Point-in-time process resource reading (Linux: getrusage + /proc).
/// Fields read zero on platforms where a probe is unavailable.
struct ResourceUsage {
  /// Resident-set high-water mark since process start, bytes.
  uint64_t rss_hwm_bytes = 0;
  /// Current resident set, bytes.
  uint64_t rss_bytes = 0;
  /// CPU time consumed so far, microseconds.
  uint64_t cpu_user_us = 0;
  uint64_t cpu_system_us = 0;
};

/// Reads the process' current resource usage.
ResourceUsage ReadResourceUsage();

/// Publishes `ReadResourceUsage()` into the global registry as the
/// `ppm.resource.*` gauges (see docs/OBSERVABILITY.md). Call at the end of
/// a run, right before capturing a report; RSS gauges are process-wide
/// (the high-water mark never resets), so they attribute to the heaviest
/// run of the process, not necessarily the one being reported.
void RecordResourceMetrics();

#ifndef PPM_OBS_DISABLED

/// RAII wall + CPU clock for one named phase of a run. On `End()` (or
/// destruction) it records `ppm.phase.<name>.wall_us` and
/// `ppm.phase.<name>.cpu_us` histograms, giving every phase a CPU/wall
/// ratio (a sequential phase at 4 threads shows cpu ~= wall; a well-sharded
/// one shows cpu ~= threads * wall). Complements TraceSpan, which records
/// wall time only.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string_view name);
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { End(); }

  /// Records the phase once; later calls are no-ops.
  void End();

 private:
  std::string name_;
  uint64_t wall_start_us_ = 0;
  uint64_t cpu_start_us_ = 0;
  bool ended_ = false;
};

#else  // PPM_OBS_DISABLED

class PhaseTimer {
 public:
  explicit PhaseTimer(std::string_view) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  void End() {}
};

#endif  // PPM_OBS_DISABLED

}  // namespace ppm::obs

#endif  // PPM_OBS_RESOURCE_H_
