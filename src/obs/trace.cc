#include "obs/trace.h"

#include <fstream>
#include <utility>

#include "obs/json_writer.h"

namespace ppm::obs {

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << content << "\n";
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

#ifndef PPM_OBS_DISABLED

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = std::exchange(other.tracer_, nullptr);
    index_ = other.index_;
    generation_ = other.generation_;
    elapsed_after_end_ = other.elapsed_after_end_;
  }
  return *this;
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  const double elapsed = tracer_->CloseSpan(index_, generation_);
  if (elapsed >= 0.0) elapsed_after_end_ = elapsed;
  tracer_ = nullptr;
}

double TraceSpan::ElapsedSeconds() const {
  if (tracer_ != nullptr) {
    const double elapsed = tracer_->SpanElapsed(index_, generation_);
    if (elapsed >= 0.0) return elapsed;
  }
  return elapsed_after_end_;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceSpan Tracer::StartSpan(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.name = std::move(name);
  event.start_us = NowUs();
  event.depth = open_spans_;
  events_.push_back(std::move(event));
  ++open_spans_;
  return TraceSpan(this, events_.size() - 1, generation_);
}

double Tracer::CloseSpan(size_t index, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) return -1.0;
  TraceEvent& event = events_[index];
  const uint64_t now = NowUs();
  event.dur_us = now > event.start_us ? now - event.start_us : 0;
  if (open_spans_ > 0) --open_spans_;
  return static_cast<double>(event.dur_us) * 1e-6;
}

double Tracer::SpanElapsed(size_t index, uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) return -1.0;
  return static_cast<double>(NowUs() - events_[index].start_us) * 1e-6;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_spans_ = 0;
  ++generation_;
  epoch_ = std::chrono::steady_clock::now();
}

bool Tracer::HasSpan(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceEvent& event : events_) {
    if (event.name == name) return true;
  }
  return false;
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginArray();
  for (const TraceEvent& event : events_) {
    w.BeginObject();
    w.Key("name").String(event.name);
    w.Key("ph").String("X");  // Complete event: ts + dur in microseconds.
    w.Key("ts").Uint(event.start_us);
    w.Key("dur").Uint(event.dur_us);
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(1);
    w.Key("args").BeginObject().Key("depth").Uint(event.depth).EndObject();
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, ToChromeTraceJson());
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

#else  // PPM_OBS_DISABLED

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, "[]");
}

#endif  // PPM_OBS_DISABLED

}  // namespace ppm::obs
