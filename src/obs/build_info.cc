#include "obs/build_info.h"

#include <thread>

#include "obs/build_info_gen.h"
#include "obs/run_report.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define __SANITIZE_ADDRESS__ 1
#endif
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace ppm::obs {

namespace {

std::string CompilerId() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string SanitizerId() {
  // Prefer the compile-time macros over the configure-time PPM_SANITIZE
  // value: they reflect what this translation unit was actually built with.
  std::string id;
#if defined(__SANITIZE_ADDRESS__)
  id = "address";
#elif defined(__SANITIZE_THREAD__)
  id = "thread";
#endif
  if (id.empty()) id = PPM_BUILD_SANITIZER;
  return id;
}

BuildInfo MakeBuildInfo() {
  BuildInfo info;
  info.git_sha = PPM_BUILD_GIT_SHA;
  info.compiler = CompilerId();
  info.build_type = PPM_BUILD_TYPE;
  info.cxx_flags = PPM_BUILD_CXX_FLAGS;
  info.sanitizer = SanitizerId();
#ifdef NDEBUG
  info.assertions = false;
#else
  info.assertions = true;
#endif
  info.num_cores = std::thread::hardware_concurrency();
  return info;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = MakeBuildInfo();
  return info;
}

void AddBuildMeta(RunReport* report) {
  const BuildInfo& info = GetBuildInfo();
  report->AddMeta("build.git_sha", info.git_sha);
  report->AddMeta("build.compiler", info.compiler);
  report->AddMeta("build.build_type", info.build_type);
  report->AddMeta("build.cxx_flags", info.cxx_flags);
  report->AddMeta("build.sanitizer", info.sanitizer);
  report->AddMeta("build.assertions", info.assertions ? "on" : "off");
  report->AddMeta("machine.cores", static_cast<uint64_t>(info.num_cores));
}

}  // namespace ppm::obs
