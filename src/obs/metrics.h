#ifndef PPM_OBS_METRICS_H_
#define PPM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppm::obs {

/// Exported state of one histogram (see `Histogram` for bucket layout).
struct HistogramData {
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper-bound estimate of the `p`-quantile (p in [0,1]) from the bucket
  /// counts: the upper edge of the bucket containing that rank.
  uint64_t ApproxQuantile(double p) const;
};

/// Point-in-time copy of a registry, safe to keep after further updates.
/// Entries are sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Value of the named counter, or null when absent (test convenience).
  const uint64_t* FindCounter(std::string_view name) const;
  const uint64_t* FindGauge(std::string_view name) const;

  /// `{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  /// "sum":..,"max":..,"buckets":[...]}}}`. Zero-valued entries are kept so
  /// a metric's existence is observable.
  std::string ToJson() const;

  /// Difference of this snapshot against an earlier `base` of the same
  /// registry, scoping metrics to one run out of a longer-lived process
  /// (bench repetition loops, multi-period sweeps). Counters and histogram
  /// buckets/count/sum subtract; gauges keep their current (last-written)
  /// value; a histogram's `max` keeps the current value, which is an upper
  /// bound for the interval rather than the interval's true max. Metrics
  /// absent from `base` (registered later) pass through unchanged.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot: one `# TYPE`
/// line per metric, names sanitized (`.` and other invalid characters map
/// to `_`), histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count`. This is the scrape payload the `ppmd` daemon will
/// serve; until then the CLI exposes it via `--metrics-prom`.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

#ifndef PPM_OBS_DISABLED

/// Monotonically increasing event tally. A `Counter` is a copyable handle
/// onto a cell owned by its `MetricsRegistry`; bumping it is one relaxed
/// atomic add, cheap enough for per-instant hot loops and safe to call from
/// the parallel miners' worker threads. Handles stay valid for the
/// registry's lifetime (including across `Reset()`).
class Counter {
 public:
  /// Unbound handle; increments go to a shared sink cell. Lets callers hold
  /// a `Counter` member before binding.
  Counter() = default;

  void Inc(uint64_t delta = 1) const {
    cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}

  inline static std::atomic<uint64_t> sink_{0};
  std::atomic<uint64_t>* cell_ = &sink_;
};

/// Last-write-wins instantaneous value (sizes, levels, fan-outs).
class Gauge {
 public:
  Gauge() = default;

  void Set(uint64_t value) const {
    cell_->store(value, std::memory_order_relaxed);
  }
  void Add(uint64_t delta) const {
    cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<uint64_t>* cell) : cell_(cell) {}

  inline static std::atomic<uint64_t> sink_{0};
  std::atomic<uint64_t>* cell_ = &sink_;
};

/// Fixed-bucket exponential histogram for latencies and sizes.
///
/// Bucket `i` (1 <= i <= 63) counts values in `[2^(i-1), 2^i)` -- i.e. values
/// of bit width `i`; bucket 0 counts zeros. `kNumBuckets` caps the range:
/// anything wider lands in the last bucket. Recording is a shift-free
/// bit-width computation plus three adds.
class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 40;

  Histogram() = default;

  void Observe(uint64_t value) const {
    cell_->buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    cell_->sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = cell_->max.load(std::memory_order_relaxed);
    while (value > seen && !cell_->max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return cell_->count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return cell_->sum.load(std::memory_order_relaxed); }

  static uint32_t BucketIndex(uint64_t value) {
    uint32_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  /// Largest value belonging to `bucket` (inclusive upper edge).
  static uint64_t BucketUpperBound(uint32_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 63) return ~0ull;
    return (1ull << bucket) - 1;
  }

 private:
  friend class MetricsRegistry;

  struct Cell {
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  explicit Histogram(Cell* cell) : cell_(cell) {}

  // Defined in metrics.cc: an in-class initializer would need Cell complete.
  static Cell sink_;
  Cell* cell_ = &sink_;
};

/// Named metric store. `Get*` registers on first use and returns a stable
/// handle; the same name always maps to the same cell. Counters, gauges,
/// and histograms live in separate namespaces.
///
/// Thread-safe: registration and snapshots serialize on a mutex, and the
/// handles update their cells with relaxed atomics, so the parallel miners'
/// workers record into the shared registry directly (see
/// docs/PARALLELISM.md for the memory model). `Snapshot()`/`Reset()` taken
/// while workers are mid-update see each cell atomically but not the set of
/// cells as one consistent cut; miners merge/join before reporting.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value while keeping registrations, so previously handed
  /// out handles remain bound. Call between runs to scope a report.
  void Reset();

  /// `RenderPrometheus(Snapshot())` -- the daemon-facing scrape endpoint.
  std::string RenderPrometheus() const { return obs::RenderPrometheus(Snapshot()); }

  /// Process-wide registry the library's built-in instrumentation uses.
  static MetricsRegistry& Global();

 private:
  // std::map nodes never move, so handles can point into them.
  mutable std::mutex mu_;
  std::map<std::string, std::atomic<uint64_t>, std::less<>> counters_;
  std::map<std::string, std::atomic<uint64_t>, std::less<>> gauges_;
  std::map<std::string, Histogram::Cell, std::less<>> histograms_;
};

#else  // PPM_OBS_DISABLED

// No-op mirrors of the instrumentation API: every operation compiles to
// nothing and every read returns zero, so instrumented code builds
// unchanged with observability compiled out.

class Counter {
 public:
  Counter() = default;
  void Inc(uint64_t = 1) const {}
  uint64_t value() const { return 0; }
};

class Gauge {
 public:
  Gauge() = default;
  void Set(uint64_t) const {}
  void Add(uint64_t) const {}
  uint64_t value() const { return 0; }
};

class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 40;
  Histogram() = default;
  void Observe(uint64_t) const {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  static uint32_t BucketIndex(uint64_t) { return 0; }
  static uint64_t BucketUpperBound(uint32_t) { return 0; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter GetCounter(std::string_view) { return Counter(); }
  Gauge GetGauge(std::string_view) { return Gauge(); }
  Histogram GetHistogram(std::string_view) { return Histogram(); }
  MetricsSnapshot Snapshot() const { return MetricsSnapshot(); }
  void Reset() {}
  std::string RenderPrometheus() const { return std::string(); }

  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
};

#endif  // PPM_OBS_DISABLED

}  // namespace ppm::obs

#endif  // PPM_OBS_METRICS_H_
