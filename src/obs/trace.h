#ifndef PPM_OBS_TRACE_H_
#define PPM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ppm::obs {

/// One completed (or still open) phase of a run, relative to the tracer's
/// epoch. `depth` is the nesting level at the time the span opened.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t depth = 0;
};

#ifndef PPM_OBS_DISABLED

class Tracer;

/// RAII handle for one phase: opens on `Tracer::StartSpan`, closes on
/// destruction (or an explicit `End()`). Move-only.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  /// Closes the span, recording its duration. Safe to call twice; a span
  /// orphaned by `Tracer::Clear()` ends as a no-op.
  void End();

  /// Seconds since the span opened (live), or its final duration once
  /// ended. Valid in all build modes, so miners can time themselves through
  /// their span even with observability compiled out.
  double ElapsedSeconds() const;

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, size_t index, uint64_t generation)
      : tracer_(tracer), index_(index), generation_(generation) {}

  Tracer* tracer_ = nullptr;
  size_t index_ = 0;
  uint64_t generation_ = 0;
  /// Final duration, captured by `End()` so the value survives `Clear()`.
  double elapsed_after_end_ = 0.0;
};

/// Records nested phase timings as a flat list of events ordered by start
/// time, exportable in Chrome's `trace_event` JSON format
/// (load via chrome://tracing or https://ui.perfetto.dev).
///
/// Thread-safe behind a mutex: the parallel miners open per-worker spans
/// from pool threads. Spans are coarse (phases, not per-item work), so the
/// lock is uncontended in practice. `events()` returns a reference into the
/// tracer and must only be read when no spans are being opened or closed
/// concurrently (i.e. after workers have joined).
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span named `name` nested under any currently open spans.
  TraceSpan StartSpan(std::string name);

  /// Drops all recorded events and restarts the epoch. Spans still open
  /// become orphans whose `End()` is a no-op.
  void Clear();

  /// All spans in start order. Spans still open have `dur_us == 0`.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// True if some recorded span is named `name` (test convenience).
  bool HasSpan(std::string_view name) const;

  /// JSON array of Chrome `trace_event` objects:
  /// `[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,"tid":1}, ...]`.
  std::string ToChromeTraceJson() const;

  /// Writes `ToChromeTraceJson()` to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Process-wide tracer the library's built-in instrumentation uses.
  static Tracer& Global();

 private:
  friend class TraceSpan;

  uint64_t NowUs() const;

  /// Ends the span if `generation` is still current and returns its final
  /// duration in seconds; returns a negative value for orphaned spans.
  double CloseSpan(size_t index, uint64_t generation);

  /// Live elapsed seconds of an open span; negative when orphaned.
  double SpanElapsed(size_t index, uint64_t generation) const;

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  uint32_t open_spans_ = 0;
  /// Bumped by `Clear()` so spans from a previous generation cannot write
  /// into recycled event slots.
  uint64_t generation_ = 0;
};

#else  // PPM_OBS_DISABLED

// No-op tracer: spans still measure wall time (ElapsedSeconds keeps
// working) but nothing is recorded and traces serialize empty.

class Tracer;

class TraceSpan {
 public:
  TraceSpan() : start_(std::chrono::steady_clock::now()) {}
  TraceSpan(TraceSpan&&) noexcept = default;
  TraceSpan& operator=(TraceSpan&&) noexcept = default;
  ~TraceSpan() = default;

  void End() {
    if (!ended_) {
      elapsed_ = Now();
      ended_ = true;
    }
  }
  double ElapsedSeconds() const { return ended_ ? elapsed_ : Now(); }

 private:
  double Now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  std::chrono::steady_clock::time_point start_;
  double elapsed_ = 0.0;
  bool ended_ = false;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  TraceSpan StartSpan(std::string) { return TraceSpan(); }
  void Clear() {}
  const std::vector<TraceEvent>& events() const {
    static const std::vector<TraceEvent> empty;
    return empty;
  }
  bool HasSpan(std::string_view) const { return false; }
  std::string ToChromeTraceJson() const { return "[]"; }
  Status WriteChromeTrace(const std::string& path) const;

  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
};

#endif  // PPM_OBS_DISABLED

}  // namespace ppm::obs

#endif  // PPM_OBS_TRACE_H_
