#include "obs/metrics.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace ppm::obs {

uint64_t HistogramData::ApproxQuantile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested quantile, 1-based.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(p * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (uint32_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const uint64_t edge = Histogram::BucketUpperBound(i);
      return std::min(edge, max);
    }
  }
  return max;
}

namespace {

const uint64_t* FindIn(const std::vector<std::pair<std::string, uint64_t>>& entries,
                       std::string_view name) {
  for (const auto& [key, value] : entries) {
    if (key == name) return &value;
  }
  return nullptr;
}

void WriteValueMap(JsonWriter* w,
                   const std::vector<std::pair<std::string, uint64_t>>& entries) {
  w->BeginObject();
  for (const auto& [name, value] : entries) {
    w->Key(name).Uint(value);
  }
  w->EndObject();
}

}  // namespace

const uint64_t* MetricsSnapshot::FindCounter(std::string_view name) const {
  return FindIn(counters, name);
}

const uint64_t* MetricsSnapshot::FindGauge(std::string_view name) const {
  return FindIn(gauges, name);
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  WriteValueMap(&w, counters);
  w.Key("gauges");
  WriteValueMap(&w, gauges);
  w.Key("histograms").BeginObject();
  for (const auto& [name, data] : histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(data.count);
    w.Key("sum").Uint(data.sum);
    w.Key("max").Uint(data.max);
    w.Key("mean").Double(data.Mean());
    w.Key("p50").Uint(data.ApproxQuantile(0.5));
    w.Key("p99").Uint(data.ApproxQuantile(0.99));
    // Trailing zero buckets are trimmed; bucket i spans [2^(i-1), 2^i).
    size_t last = data.buckets.size();
    while (last > 0 && data.buckets[last - 1] == 0) --last;
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < last; ++i) w.Uint(data.buckets[i]);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  delta.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    const uint64_t* before = base.FindCounter(name);
    const uint64_t prior = before != nullptr ? *before : 0;
    // A counter can only move forward; a smaller current value means the
    // registry was Reset() after `base`, so the full value is the delta.
    delta.counters.emplace_back(name, value >= prior ? value - prior : value);
  }
  // Gauges are last-write-wins instantaneous values; the "delta" of a gauge
  // over an interval is simply its value at the end of it.
  delta.gauges = gauges;
  delta.histograms.reserve(histograms.size());
  for (const auto& [name, data] : histograms) {
    const HistogramData* before = nullptr;
    for (const auto& [base_name, base_data] : base.histograms) {
      if (base_name == name) {
        before = &base_data;
        break;
      }
    }
    if (before == nullptr || data.count < before->count) {
      delta.histograms.emplace_back(name, data);
      continue;
    }
    HistogramData diff;
    diff.count = data.count - before->count;
    diff.sum = data.sum - before->sum;
    diff.max = data.max;  // Upper bound: the true interval max is unknown.
    diff.buckets.resize(data.buckets.size());
    for (size_t i = 0; i < data.buckets.size(); ++i) {
      const uint64_t prior = i < before->buckets.size() ? before->buckets[i] : 0;
      diff.buckets[i] = data.buckets[i] >= prior ? data.buckets[i] - prior : data.buckets[i];
    }
    delta.histograms.emplace_back(name, std::move(diff));
  }
  return delta;
}

#ifndef PPM_OBS_DISABLED

Histogram::Cell Histogram::sink_;

Counter MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name), 0).first;
  }
  return Counter(&it->second);
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name), 0).first;
  }
  return Gauge(&it->second);
}

Histogram MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return Histogram(&it->second);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    snapshot.counters.emplace_back(name,
                                   value.load(std::memory_order_relaxed));
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    snapshot.gauges.emplace_back(name, value.load(std::memory_order_relaxed));
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HistogramData data;
    data.buckets.reserve(Histogram::kNumBuckets);
    for (uint32_t i = 0; i < Histogram::kNumBuckets; ++i) {
      data.buckets.push_back(cell.buckets[i].load(std::memory_order_relaxed));
    }
    data.count = cell.count.load(std::memory_order_relaxed);
    data.sum = cell.sum.load(std::memory_order_relaxed);
    data.max = cell.max.load(std::memory_order_relaxed);
    snapshot.histograms.emplace_back(name, std::move(data));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, value] : counters_) {
    value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, value] : gauges_) {
    value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : histograms_) {
    for (uint32_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cell.buckets[i].store(0, std::memory_order_relaxed);
    }
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

#endif  // PPM_OBS_DISABLED

}  // namespace ppm::obs
