// Ablation 1 (DESIGN.md): the paper's max-subpattern tree vs a flat hash
// table as the hit store of Algorithm 3.2. Both give identical results; the
// tree prunes superpattern counting by shared structure while the hash store
// scans every distinct hit per candidate. The gap widens with the number of
// distinct hits and the number of candidates evaluated.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/hitset_miner.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Run(uint32_t max_pat_length, uint32_t num_f1, double independent_conf,
         double min_conf, obs::JsonWriter* rows) {
  synth::GeneratorOptions generator =
      Figure2Options(Pick<uint64_t>(100000, 5000), max_pat_length);
  generator.num_f1 = num_f1;
  generator.independent_confidence = independent_conf;
  const synth::GeneratedSeries data = DieOr(synth::GenerateSeries(generator));

  MiningOptions options;
  options.period = generator.period;
  options.min_confidence = min_conf;

  tsdb::InMemorySeriesSource tree_source(&data.series);
  const MiningResult tree = DieOr(MineHitSet(tree_source, options));

  options.hit_store = HitStoreKind::kHashTable;
  tsdb::InMemorySeriesSource hash_source(&data.series);
  const MiningResult hash = DieOr(MineHitSet(hash_source, options));

  if (tree.size() != hash.size()) {
    std::fprintf(stderr, "store disagreement: %zu vs %zu\n", tree.size(),
                 hash.size());
    std::exit(1);
  }
  std::printf("%8u %6u %12llu %12llu %12llu %12.1f %12.1f\n", max_pat_length,
              num_f1,
              static_cast<unsigned long long>(tree.stats().hit_store_entries),
              static_cast<unsigned long long>(tree.stats().tree_nodes),
              static_cast<unsigned long long>(tree.stats().candidates_evaluated),
              tree.stats().elapsed_seconds * 1e3,
              hash.stats().elapsed_seconds * 1e3);
  rows->BeginObject()
      .Key("mpl").Uint(max_pat_length)
      .Key("num_f1").Uint(num_f1)
      .Key("hit_store_entries").Uint(tree.stats().hit_store_entries)
      .Key("candidates").Uint(tree.stats().candidates_evaluated)
      .Key("tree_ms").Double(tree.stats().elapsed_seconds * 1e3)
      .Key("hash_ms").Double(hash.stats().elapsed_seconds * 1e3);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Ablation: max-subpattern tree vs hash-table hit store");
  std::printf("%8s %6s %12s %12s %12s %12s %12s\n", "MPL", "|F1|", "|H|",
              "tree_nodes", "candidates", "tree(ms)", "hash(ms)");
  ppm::bench::BenchReport report("ablation_hit_store", argc, argv);
  ppm::obs::JsonWriter& rows = report.rows();
  ppm::bench::Run(4, 12, 0.85, 0.8, &rows);
  ppm::bench::Run(6, 12, 0.85, 0.8, &rows);
  if (!ppm::bench::CiProfile()) {
    ppm::bench::Run(8, 12, 0.85, 0.8, &rows);
    ppm::bench::Run(10, 12, 0.85, 0.8, &rows);
  }
  // More independent letters -> many distinct hit masks -> bigger store.
  ppm::bench::Run(4, 20, 0.6, 0.5, &rows);
  if (!ppm::bench::CiProfile()) {
    ppm::bench::Run(4, 30, 0.6, 0.5, &rows);
    ppm::bench::Run(4, 40, 0.6, 0.5, &rows);
  }
  report.Write();
  return 0;
}
