// Reproduces Figure 2 of the paper: running time of single-period Apriori
// (Algorithm 3.1) vs max-subpattern hit-set (Algorithm 3.2) as
// MAX-PAT-LENGTH grows from 2 to 10, for series lengths 100k and 500k, with
// p = 50 and |F_1| = 12.
//
// Expected shape (paper Section 5.2): hit-set is almost constant in
// MAX-PAT-LENGTH; Apriori grows almost linearly; the gap is about 2x at
// MAX-PAT-LENGTH 8 and keeps widening.
//
// Besides the terminal table, results are written as a BenchReport to
// BENCH_fig2.json (or argv[1]): one row object per (length, mpl) point
// under the "rows" section. PPM_BENCH_PROFILE=ci shrinks the sweep.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

struct Sample {
  double apriori_ms = 0;
  double hitset_ms = 0;
  uint64_t apriori_scans = 0;
  uint64_t hitset_scans = 0;
  size_t num_patterns = 0;
};

Sample RunOne(uint64_t length, uint32_t max_pat_length) {
  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(Figure2Options(length, max_pat_length)));

  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;

  Sample sample;
  {
    tsdb::InMemorySeriesSource source(&data.series);
    const MiningResult result = DieOr(MineApriori(source, options));
    sample.apriori_ms = result.stats().elapsed_seconds * 1e3;
    sample.apriori_scans = result.stats().scans;
    sample.num_patterns = result.size();
  }
  {
    tsdb::InMemorySeriesSource source(&data.series);
    const MiningResult result = DieOr(MineHitSet(source, options));
    sample.hitset_ms = result.stats().elapsed_seconds * 1e3;
    sample.hitset_scans = result.stats().scans;
    if (result.size() != sample.num_patterns) {
      std::fprintf(stderr, "miner disagreement: %zu vs %zu patterns\n",
                   sample.num_patterns, result.size());
      std::exit(1);
    }
  }
  return sample;
}

void RunSweep(uint64_t length, obs::JsonWriter* rows) {
  std::printf("\nLENGTH = %llu, p = 50, |F1| = 12, min_conf = 0.8\n",
              static_cast<unsigned long long>(length));
  std::printf("%-16s %14s %14s %8s %8s %10s %10s\n", "max-pat-length",
              "apriori(ms)", "hit-set(ms)", "scans_A", "scans_H", "gain",
              "patterns");
  const uint32_t mpl_high = Pick<uint32_t>(10, 6);
  for (uint32_t mpl = 2; mpl <= mpl_high; mpl += 2) {
    const Sample s = RunOne(length, mpl);
    std::printf("%-16u %14.1f %14.1f %8llu %8llu %9.2fx %10zu\n", mpl,
                s.apriori_ms, s.hitset_ms,
                static_cast<unsigned long long>(s.apriori_scans),
                static_cast<unsigned long long>(s.hitset_scans),
                s.apriori_ms / (s.hitset_ms > 0 ? s.hitset_ms : 1e-9),
                s.num_patterns);
    rows->BeginObject()
        .Key("length").Uint(length)
        .Key("max_pat_length").Uint(mpl)
        .Key("apriori_ms").Double(s.apriori_ms)
        .Key("hitset_ms").Double(s.hitset_ms)
        .Key("scans_apriori").Uint(s.apriori_scans)
        .Key("scans_hitset").Uint(s.hitset_scans)
        .Key("patterns").Uint(s.num_patterns);
    rows->EndObject();
  }
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Figure 2: runtime vs MAX-PAT-LENGTH (Apriori vs max-subpattern hit-set)");
  ppm::bench::BenchReport report("fig2", argc, argv);
  report.AddMeta("period", "50");
  report.AddMeta("num_f1", "12");
  report.AddMeta("min_conf", "0.8");
  ppm::bench::RunSweep(ppm::bench::Pick<uint64_t>(100000, 5000),
                       &report.rows());
  if (!ppm::bench::CiProfile()) ppm::bench::RunSweep(500000, &report.rows());
  std::printf(
      "\nPaper's qualitative result: hit-set ~flat, Apriori ~linear in\n"
      "MAX-PAT-LENGTH; gain ~2x at MAX-PAT-LENGTH 8 and widening.\n");
  report.Write();
  return 0;
}
