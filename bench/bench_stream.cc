// Streaming miner bench: append throughput and snapshot latency of the
// incremental hit-set miner vs re-running the batch miner from scratch at
// each checkpoint. The streaming state never re-reads history, so its
// per-checkpoint cost is flat while batch re-mining grows linearly with the
// stream so far.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/hitset_miner.h"
#include "obs/json_writer.h"
#include "stream/streaming_miner.h"
#include "tsdb/series_source.h"
#include "util/stopwatch.h"

namespace ppm::bench {
namespace {

void Run(obs::JsonWriter* rows) {
  const uint64_t length = Pick<uint64_t>(500000, 20000);
  const uint64_t seed_prefix = Pick<uint64_t>(10000, 2500);
  const std::vector<uint64_t> checkpoints =
      Pick(std::vector<uint64_t>{50000, 100000, 200000, 350000, 500000},
           std::vector<uint64_t>{5000, 10000, 20000});
  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(Figure2Options(length, 6)));
  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;

  // Seed from an initial prefix.
  tsdb::TimeSeries prefix;
  prefix.symbols() = data.series.symbols();
  for (uint64_t t = 0; t < seed_prefix; ++t) prefix.Append(data.series.at(t));
  auto miner = DieOr(stream::StreamingMiner::SeedFromPrefix(options, prefix));

  std::printf("%12s %14s %16s %16s %10s\n", "instants", "append(Mi/s)",
              "snapshot(ms)", "batch_remine(ms)", "patterns");
  uint64_t consumed = seed_prefix;
  for (const uint64_t checkpoint : checkpoints) {
    Stopwatch append_watch;
    for (uint64_t t = consumed; t < checkpoint; ++t) {
      miner->Append(data.series.at(t));
    }
    const double append_seconds = append_watch.ElapsedSeconds();
    const double rate =
        static_cast<double>(checkpoint - consumed) / append_seconds / 1e6;
    consumed = checkpoint;

    Stopwatch snapshot_watch;
    const MiningResult snapshot = miner->Snapshot();
    const double snapshot_ms = snapshot_watch.ElapsedMillis();

    // Batch equivalent: mine the prefix seen so far from scratch.
    tsdb::TimeSeries so_far;
    so_far.symbols() = data.series.symbols();
    for (uint64_t t = 0; t < checkpoint; ++t) so_far.Append(data.series.at(t));
    tsdb::InMemorySeriesSource source(&so_far);
    Stopwatch batch_watch;
    const MiningResult batch = DieOr(MineHitSet(source, options));
    const double batch_ms = batch_watch.ElapsedMillis();

    if (batch.size() != snapshot.size()) {
      std::fprintf(stderr, "stream/batch disagreement: %zu vs %zu\n",
                   snapshot.size(), batch.size());
      std::exit(1);
    }
    std::printf("%12llu %14.1f %16.2f %16.1f %10zu\n",
                static_cast<unsigned long long>(checkpoint), rate, snapshot_ms,
                batch_ms, snapshot.size());
    rows->BeginObject()
        .Key("instants").Uint(checkpoint)
        .Key("append_mi_per_s").Double(rate)
        .Key("snapshot_ms").Double(snapshot_ms)
        .Key("batch_remine_ms").Double(batch_ms)
        .Key("patterns").Uint(snapshot.size());
    rows->EndObject();
  }
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Streaming (incremental) mining vs batch re-mining at checkpoints");
  ppm::bench::BenchReport report("stream", argc, argv);
  ppm::bench::Run(&report.rows());
  std::printf(
      "\nSnapshot cost is flat (touches only the hit store); batch re-mining\n"
      "re-reads the whole stream each time.\n");
  report.Write();
  return 0;
}
