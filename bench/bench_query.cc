// Constraint pushdown (src/query): mining with anti-monotone constraints
// pushed into C_max construction vs mining everything and post-filtering.
// Pushdown shrinks F_1, which shrinks every later stage -- fewer candidates,
// smaller hit masks, fewer patterns materialized.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "obs/json_writer.h"
#include "query/constraints.h"
#include "tsdb/series_source.h"
#include "util/stopwatch.h"

namespace ppm::bench {
namespace {

void Run(uint32_t num_f1, uint32_t allowed, obs::JsonWriter* rows) {
  synth::GeneratorOptions generator =
      Figure2Options(Pick<uint64_t>(100000, 5000), 4);
  generator.num_f1 = num_f1;
  generator.independent_confidence = 0.6;
  const synth::GeneratedSeries data = DieOr(synth::GenerateSeries(generator));

  MiningOptions options;
  options.period = generator.period;
  options.min_confidence = 0.5;

  query::Constraints constraints;
  for (uint32_t f = 0; f < allowed; ++f) {
    constraints.allowed_features.push_back(f);
  }

  // Pushdown.
  tsdb::InMemorySeriesSource pushed_source(&data.series);
  Stopwatch pushed_watch;
  const MiningResult pushed =
      DieOr(query::MineConstrained(pushed_source, options, constraints));
  const double pushed_ms = pushed_watch.ElapsedMillis();

  // Mine-everything + post-filter.
  tsdb::InMemorySeriesSource plain_source(&data.series);
  Stopwatch plain_watch;
  const MiningResult everything = DieOr(Mine(plain_source, options));
  const auto filtered = query::FilterPatterns(everything, constraints);
  const double plain_ms = plain_watch.ElapsedMillis();

  if (filtered.size() != pushed.size()) {
    std::fprintf(stderr, "pushdown disagreement: %zu vs %zu\n", pushed.size(),
                 filtered.size());
    std::exit(1);
  }
  std::printf("%6u %8u %10llu %10zu %12zu %12.1f %14.1f\n", num_f1, allowed,
              static_cast<unsigned long long>(pushed.stats().num_f1_letters),
              pushed.size(), everything.size(), pushed_ms, plain_ms);
  rows->BeginObject()
      .Key("num_f1").Uint(num_f1)
      .Key("allowed").Uint(allowed)
      .Key("f1_pushed").Uint(pushed.stats().num_f1_letters)
      .Key("patterns").Uint(pushed.size())
      .Key("all_mined").Uint(everything.size())
      .Key("pushed_ms").Double(pushed_ms)
      .Key("postfilter_ms").Double(plain_ms);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Constraint pushdown vs mine-everything + post-filter");
  std::printf("%6s %8s %10s %10s %12s %12s %14s\n", "|F1|", "allowed",
              "F1_pushed", "patterns", "all_mined", "pushed(ms)",
              "postfilter(ms)");
  ppm::bench::BenchReport report("query", argc, argv);
  ppm::obs::JsonWriter& rows = report.rows();
  ppm::bench::Run(12, 4, &rows);
  ppm::bench::Run(24, 4, &rows);
  if (!ppm::bench::CiProfile()) {
    ppm::bench::Run(40, 4, &rows);
    ppm::bench::Run(40, 8, &rows);
    ppm::bench::Run(40, 40, &rows);
  }
  std::printf(
      "\nIdentical answers; pushdown cost tracks the allowed subset while\n"
      "post-filtering pays for the full frequent set first.\n");
  report.Write();
  return 0;
}
