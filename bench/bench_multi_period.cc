// Multi-period mining (Section 3.2): looping single-period mining
// (Algorithm 3.3, 2 scans per period) vs shared mining of all periods in the
// range in two total scans (Algorithm 3.4). Reports measured scan counts and
// wall time as the range of periods widens.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/multi_period.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Run(uint32_t period_low, uint32_t period_high, obs::JsonWriter* rows) {
  const synth::GeneratedSeries data = DieOr(
      synth::GenerateSeries(Figure2Options(Pick<uint64_t>(100000, 5000), 6)));
  MiningOptions options;
  options.min_confidence = 0.8;

  tsdb::InMemorySeriesSource looped_source(&data.series);
  const MultiPeriodResult looped = DieOr(
      MineMultiPeriodLooped(looped_source, period_low, period_high, options));
  tsdb::InMemorySeriesSource shared_source(&data.series);
  const MultiPeriodResult shared = DieOr(
      MineMultiPeriodShared(shared_source, period_low, period_high, options));

  size_t looped_patterns = 0, shared_patterns = 0;
  for (const auto& [p, r] : looped.per_period) looped_patterns += r.size();
  for (const auto& [p, r] : shared.per_period) shared_patterns += r.size();
  if (looped_patterns != shared_patterns) {
    std::fprintf(stderr, "method disagreement: %zu vs %zu patterns\n",
                 looped_patterns, shared_patterns);
    std::exit(1);
  }

  const uint32_t k = period_high - period_low + 1;
  std::printf("%9u [%3u,%3u] %12llu %12llu %14.1f %14.1f %10zu\n", k,
              period_low, period_high,
              static_cast<unsigned long long>(looped.total_scans),
              static_cast<unsigned long long>(shared.total_scans),
              looped.elapsed_seconds * 1e3, shared.elapsed_seconds * 1e3,
              shared_patterns);
  rows->BeginObject()
      .Key("period_low").Uint(period_low)
      .Key("period_high").Uint(period_high)
      .Key("scans_looped").Uint(looped.total_scans)
      .Key("scans_shared").Uint(shared.total_scans)
      .Key("looped_ms").Double(looped.elapsed_seconds * 1e3)
      .Key("shared_ms").Double(shared.elapsed_seconds * 1e3)
      .Key("patterns").Uint(shared_patterns);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Algorithm 3.3 (looped) vs 3.4 (shared) over period ranges");
  std::printf("%9s %9s %12s %12s %14s %14s %10s\n", "#periods", "range",
              "scans_loop", "scans_share", "looped(ms)", "shared(ms)",
              "patterns");
  ppm::bench::BenchReport report("multi_period", argc, argv);
  ppm::obs::JsonWriter& rows = report.rows();
  ppm::bench::Run(50, 50, &rows);
  ppm::bench::Run(48, 52, &rows);
  ppm::bench::Run(45, 55, &rows);
  if (!ppm::bench::CiProfile()) {
    ppm::bench::Run(40, 60, &rows);
    ppm::bench::Run(30, 70, &rows);
    ppm::bench::Run(10, 90, &rows);
  }
  std::printf(
      "\nShared mining always uses 2 scans; looping uses 2 per period.\n"
      "Shared trades scan count for per-scan bookkeeping across periods.\n");
  report.Write();
  return 0;
}
