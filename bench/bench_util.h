#ifndef PPM_BENCH_BENCH_UTIL_H_
#define PPM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json_writer.h"
#include "obs/run_report.h"
#include "synth/generator.h"
#include "util/status.h"

namespace ppm::bench {

/// Aborts the benchmark on an unexpected error (benchmarks have no caller to
/// propagate a Status to).
inline void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T DieOr(Result<T> result) {
  DieIf(result.status());
  return std::move(result).value();
}

/// The paper's Figure 2 generator configuration: p = 50, |F_1| = 12,
/// varying LENGTH and MAX-PAT-LENGTH.
inline synth::GeneratorOptions Figure2Options(uint64_t length,
                                              uint32_t max_pat_length,
                                              uint64_t seed = 42) {
  synth::GeneratorOptions options;
  options.length = length;
  options.period = 50;
  options.max_pat_length = max_pat_length;
  options.num_f1 = 12;
  options.num_features = 100;
  options.anchor_confidence = 0.9;
  options.independent_confidence = 0.85;
  options.noise_mean = 1.0;
  options.seed = seed;
  return options;
}

/// Prints a section header in the style used across all bench binaries.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Output path for a bench's machine-readable report: argv[1] when given,
/// else `BENCH_<name>.json` in the working directory.
inline std::string BenchReportPath(const std::string& name, int argc,
                                   char** argv) {
  if (argc > 1) return argv[1];
  return "BENCH_" + name + ".json";
}

/// Finalizes a bench report: captures the global metrics/span state
/// accumulated over the sweeps, writes the JSON file, and announces it.
inline void WriteBenchReport(obs::RunReport* report, const std::string& path) {
  report->CaptureGlobal();
  DieIf(report->WriteJson(path));
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace ppm::bench

#endif  // PPM_BENCH_BENCH_UTIL_H_
