#ifndef PPM_BENCH_BENCH_UTIL_H_
#define PPM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "synth/generator.h"
#include "util/status.h"

namespace ppm::bench {

/// Aborts the benchmark on an unexpected error (benchmarks have no caller to
/// propagate a Status to).
inline void DieIf(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T DieOr(Result<T> result) {
  DieIf(result.status());
  return std::move(result).value();
}

/// Workload profile, selected by the PPM_BENCH_PROFILE environment variable
/// (`ci` or `full`, default full). The ci profile shrinks every bench's
/// workload so the whole suite runs in seconds; scripts/bench.sh sets it and
/// the perf gate refuses to compare reports of different profiles.
enum class Profile { kFull, kCi };

inline Profile ActiveProfile() {
  static const Profile profile = [] {
    const char* env = std::getenv("PPM_BENCH_PROFILE");
    return (env != nullptr && std::string(env) == "ci") ? Profile::kCi
                                                        : Profile::kFull;
  }();
  return profile;
}

inline bool CiProfile() { return ActiveProfile() == Profile::kCi; }

inline const char* ProfileName() { return CiProfile() ? "ci" : "full"; }

/// Profile-dependent workload parameter: `full` normally, `ci` under the
/// fast profile.
template <typename T>
T Pick(T full, T ci) {
  return CiProfile() ? ci : full;
}

/// Repetition aggregate of one timed workload. Median and MAD (median
/// absolute deviation) rather than mean/stddev: a single page-fault or
/// scheduler stall skews a mean badly at these run lengths, while the
/// median is unmoved and the MAD gives the perf gate an honest noise scale.
struct RepSample {
  uint32_t reps = 0;
  double median_ms = 0;
  double mad_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

inline double MedianOf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

/// Runs `fn` `reps` times and aggregates the wall times.
template <typename Fn>
RepSample MeasureMs(uint32_t reps, Fn&& fn) {
  std::vector<double> times_ms;
  times_ms.reserve(reps);
  for (uint32_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    times_ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  RepSample sample;
  sample.reps = reps;
  sample.median_ms = MedianOf(times_ms);
  std::vector<double> deviations;
  deviations.reserve(times_ms.size());
  for (const double t : times_ms) {
    deviations.push_back(std::fabs(t - sample.median_ms));
  }
  sample.mad_ms = MedianOf(std::move(deviations));
  const auto [min_it, max_it] =
      std::minmax_element(times_ms.begin(), times_ms.end());
  sample.min_ms = *min_it;
  sample.max_ms = *max_it;
  return sample;
}

/// Emits a RepSample's fields into the row object currently open on `rows`.
inline void EmitSample(obs::JsonWriter* rows, const RepSample& sample) {
  rows->Key("reps").Uint(sample.reps);
  rows->Key("median_ms").Double(sample.median_ms);
  rows->Key("mad_ms").Double(sample.mad_ms);
  rows->Key("min_ms").Double(sample.min_ms);
  rows->Key("max_ms").Double(sample.max_ms);
}

/// The paper's Figure 2 generator configuration: p = 50, |F_1| = 12,
/// varying LENGTH and MAX-PAT-LENGTH.
inline synth::GeneratorOptions Figure2Options(uint64_t length,
                                              uint32_t max_pat_length,
                                              uint64_t seed = 42) {
  synth::GeneratorOptions options;
  options.length = length;
  options.period = 50;
  options.max_pat_length = max_pat_length;
  options.num_f1 = 12;
  options.num_features = 100;
  options.anchor_confidence = 0.9;
  options.independent_confidence = 0.85;
  options.noise_mean = 1.0;
  options.seed = seed;
  return options;
}

/// Prints a section header in the style used across all bench binaries.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Output path for a bench's machine-readable report: argv[1] when given,
/// else `BENCH_<name>.json` in the working directory.
inline std::string BenchReportPath(const std::string& name, int argc,
                                   char** argv) {
  if (argc > 1) return argv[1];
  return "BENCH_" + name + ".json";
}

/// The one BenchReport envelope every bench binary emits (see
/// docs/BENCHMARKING.md): a RunReport whose meta carries the build
/// fingerprint and active profile, a "rows" section with one object per
/// sweep point, and the metrics/spans accumulated across the sweeps.
///
/// Construction resets the global metrics registry and tracer so the
/// captured state covers exactly this bench's work; `Write()` finalizes
/// the rows array, stamps build and resource info, and writes the file.
class BenchReport {
 public:
  BenchReport(const std::string& name, int argc, char** argv)
      : path_(BenchReportPath(name, argc, argv)), report_("bench_" + name) {
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Clear();
    report_.AddMeta("bench", name);
    report_.AddMeta("profile", ProfileName());
    rows_.BeginArray();
  }

  /// Open rows array; append one object per sweep point.
  obs::JsonWriter& rows() { return rows_; }

  void AddMeta(std::string key, std::string value) {
    report_.AddMeta(std::move(key), std::move(value));
  }
  void AddMeta(std::string key, uint64_t value) {
    report_.AddMeta(std::move(key), value);
  }

  /// Finalizes and writes the report; call exactly once, after all rows.
  void Write() {
    rows_.EndArray();
    report_.AddRawSection("rows", rows_.str());
    obs::AddBuildMeta(&report_);
    obs::RecordResourceMetrics();
    report_.CaptureGlobal();
    DieIf(report_.WriteJson(path_));
    std::printf("\nwrote %s\n", path_.c_str());
  }

 private:
  std::string path_;
  obs::RunReport report_;
  obs::JsonWriter rows_;
};

}  // namespace ppm::bench

#endif  // PPM_BENCH_BENCH_UTIL_H_
