// Micro-benchmarks (google-benchmark) for the hot primitives of the mining
// pipeline: bitset subset tests, segment-mask accumulation, tree insertion,
// superpattern counting, and candidate generation.

#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "core/candidate_gen.h"
#include "core/pattern.h"
#include "core/f1_scan.h"
#include "core/letter_space.h"
#include "core/max_subpattern_tree.h"
#include "synth/generator.h"
#include "tsdb/binary_format.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm {
namespace {

Bitset RandomMask(Rng& rng, uint32_t bits, double density) {
  Bitset mask(bits);
  for (uint32_t bit = 0; bit < bits; ++bit) {
    if (rng.NextBool(density)) mask.Set(bit);
  }
  return mask;
}

void BM_BitsetIsSubsetOf(benchmark::State& state) {
  Rng rng(1);
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  const Bitset a = RandomMask(rng, bits, 0.3);
  const Bitset b = RandomMask(rng, bits, 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IsSubsetOf(b));
  }
}
BENCHMARK(BM_BitsetIsSubsetOf)->Arg(16)->Arg(64)->Arg(256);

void BM_SegmentMask(benchmark::State& state) {
  const uint32_t period = static_cast<uint32_t>(state.range(0));
  std::vector<Letter> letters;
  for (uint32_t p = 0; p < period; ++p) letters.push_back({p, p % 8});
  const LetterSpace space(period, letters);

  Rng rng(2);
  std::vector<tsdb::FeatureSet> segment(period);
  for (auto& instant : segment) {
    for (int i = 0; i < 3; ++i) {
      instant.Set(static_cast<uint32_t>(rng.NextBelow(8)));
    }
  }
  Bitset mask(space.size());
  for (auto _ : state) {
    space.SegmentMask(segment.data(), &mask);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * period);
}
BENCHMARK(BM_SegmentMask)->Arg(10)->Arg(50)->Arg(200);

void BM_TreeInsert(benchmark::State& state) {
  Rng rng(3);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Bitset full(n);
  for (uint32_t bit = 0; bit < n; ++bit) full.Set(bit);
  std::vector<Bitset> hits;
  for (int i = 0; i < 1024; ++i) {
    Bitset mask = RandomMask(rng, n, 0.6);
    if (mask.Count() >= 2) hits.push_back(std::move(mask));
  }
  for (auto _ : state) {
    MaxSubpatternTree tree(full, n);
    for (const Bitset& hit : hits) tree.Insert(hit);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(hits.size()));
}
BENCHMARK(BM_TreeInsert)->Arg(8)->Arg(12)->Arg(16);

void BM_TreeCountSuperpatterns(benchmark::State& state) {
  Rng rng(4);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Bitset full(n);
  for (uint32_t bit = 0; bit < n; ++bit) full.Set(bit);
  MaxSubpatternTree tree(full, n);
  for (int i = 0; i < 2048; ++i) {
    Bitset mask = RandomMask(rng, n, 0.6);
    if (mask.Count() >= 2) tree.Insert(mask);
  }
  std::vector<Bitset> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(RandomMask(rng, n, 0.2));
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.CountSuperpatterns(queries[next++ % queries.size()]));
  }
}
BENCHMARK(BM_TreeCountSuperpatterns)->Arg(8)->Arg(12)->Arg(16);

void BM_GenerateCandidates(benchmark::State& state) {
  // All pairs over n letters as the frequent level-2 set.
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<LevelEntry> level2;
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      LevelEntry entry;
      entry.items = {a, b};
      entry.mask.Set(a);
      entry.mask.Set(b);
      level2.push_back(std::move(entry));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(level2));
  }
}
BENCHMARK(BM_GenerateCandidates)->Arg(8)->Arg(16)->Arg(24);

void BM_VarintRoundTrip(benchmark::State& state) {
  // Encode+decode a block of delta-encoded ids through stringstreams.
  Rng rng(5);
  std::vector<uint32_t> values;
  for (int i = 0; i < 1024; ++i) {
    values.push_back(static_cast<uint32_t>(rng.NextBelow(1u << state.range(0))));
  }
  for (auto _ : state) {
    std::stringstream buffer;
    for (uint32_t v : values) tsdb::internal::WriteVarint32(buffer, v);
    uint32_t out = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      tsdb::internal::ReadVarint32(buffer, &out);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintRoundTrip)->Arg(7)->Arg(14)->Arg(28);

void BM_PatternMatchesSegment(benchmark::State& state) {
  Rng rng(6);
  tsdb::TimeSeries series;
  const uint32_t period = static_cast<uint32_t>(state.range(0));
  for (uint32_t t = 0; t < period; ++t) {
    tsdb::FeatureSet instant;
    for (int i = 0; i < 4; ++i) {
      instant.Set(static_cast<uint32_t>(rng.NextBelow(16)));
    }
    series.Append(std::move(instant));
  }
  Pattern pattern(period);
  for (uint32_t p = 0; p < period; p += 3) {
    pattern.AddLetter(p, static_cast<uint32_t>(rng.NextBelow(16)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.MatchesSegment(series, 0));
  }
}
BENCHMARK(BM_PatternMatchesSegment)->Arg(10)->Arg(50)->Arg(200);

void BM_F1Scan(benchmark::State& state) {
  synth::GeneratorOptions options;
  options.length = static_cast<uint64_t>(state.range(0));
  options.period = 50;
  options.max_pat_length = 6;
  options.num_f1 = 12;
  auto generated = synth::GenerateSeries(options);
  if (!generated.ok()) {
    state.SkipWithError(generated.status().ToString().c_str());
    return;
  }
  MiningOptions mining;
  mining.period = 50;
  mining.min_confidence = 0.8;
  for (auto _ : state) {
    tsdb::InMemorySeriesSource source(&generated->series);
    auto f1 = ScanForF1(source, mining);
    benchmark::DoNotOptimize(f1);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_F1Scan)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace ppm

BENCHMARK_MAIN();
