// Validates Property 3.2 empirically: the hit-set size |H| is bounded by
// min(m, 2^n_d - n_d - 1), and reports how tight the bound is (live tree
// size and node count) as |F_1| and the series length vary. This reproduces
// the buffer-size discussion of Section 3.1.2 (yearly vs weekly example).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/hitset_miner.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Report(uint32_t num_f1, uint64_t length, obs::JsonWriter* rows) {
  synth::GeneratorOptions generator = Figure2Options(length, 4);
  generator.num_f1 = num_f1;
  generator.independent_confidence = 0.85;
  const synth::GeneratedSeries data = DieOr(synth::GenerateSeries(generator));

  MiningOptions options;
  options.period = generator.period;
  options.min_confidence = 0.8;
  tsdb::InMemorySeriesSource source(&data.series);
  const MiningResult result = DieOr(MineHitSet(source, options));

  const uint64_t m = result.stats().num_periods;
  const uint64_t n_d = result.stats().num_f1_letters;
  const uint64_t subset_bound =
      n_d < 63 ? (uint64_t{1} << n_d) - n_d - 1 : UINT64_MAX;
  const uint64_t bound = std::min(m, subset_bound);
  std::printf("%6u %10llu %8llu %6llu %12llu %12llu %12llu %10llu\n", num_f1,
              static_cast<unsigned long long>(length),
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(n_d),
              static_cast<unsigned long long>(subset_bound),
              static_cast<unsigned long long>(bound),
              static_cast<unsigned long long>(result.stats().hit_store_entries),
              static_cast<unsigned long long>(result.stats().tree_nodes));
  if (result.stats().hit_store_entries > bound) {
    std::fprintf(stderr, "BOUND VIOLATED\n");
    std::exit(1);
  }
  rows->BeginObject()
      .Key("num_f1").Uint(num_f1)
      .Key("length").Uint(length)
      .Key("num_periods").Uint(m)
      .Key("n_d").Uint(n_d)
      .Key("bound").Uint(bound)
      .Key("hit_store_entries").Uint(result.stats().hit_store_entries)
      .Key("time_ms").Double(result.stats().elapsed_seconds * 1e3);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  using ppm::bench::Pick;
  ppm::bench::PrintHeader(
      "Property 3.2: |H| <= min(m, 2^n_d - n_d - 1) (hit-set buffer bound)");
  std::printf("%6s %10s %8s %6s %12s %12s %12s %10s\n", "|F1|", "LENGTH", "m",
              "n_d", "2^n-n-1", "bound", "|H|", "tree_nodes");
  ppm::bench::BenchReport report("hitset_bound", argc, argv);
  const uint64_t base_length = Pick<uint64_t>(100000, 5000);
  for (const uint32_t num_f1 :
       Pick(std::vector<uint32_t>{4, 6, 8, 10, 12, 16},
            std::vector<uint32_t>{4, 8, 12})) {
    ppm::bench::Report(num_f1, base_length, &report.rows());
  }
  // Few periods: the m term of the bound dominates (the paper's "yearly
  // patterns over 100 years need at most 100 buffer slots").
  for (const uint64_t length :
       Pick(std::vector<uint64_t>{5000, 10000, 50000},
            std::vector<uint64_t>{1000, 2500})) {
    ppm::bench::Report(12, length, &report.rows());
  }
  std::printf("\nAll configurations satisfied the bound.\n");
  report.Write();
  return 0;
}
