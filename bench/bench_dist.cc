// Distributed shard-mining bench: the in-process dist pipeline
// (PlanShards -> MineShardCounts per shard -> MergeShardResults) vs the
// one-shot miner, as the shard count grows, plus one retry-overhead row
// quantifying the worst-case cost of a worker killed just before its
// durable write (the whole shard attempt is wasted and re-mined).
//
// Workers run in-process here -- the bench measures the pipeline's
// algorithmic cost (per-shard scan + exact merge), not fork/exec noise,
// so the rows are deterministic and the perf gate can hold the raw
// sufficient-statistic sizes (letters, hits) and the merged pattern set
// exact. `patterns_match` certifies the merge reproduced the one-shot
// pattern/count/confidence set byte-for-byte on every row; the
// coordinator's process-level supervision is exercised by
// tests/dist_coordinator_test.cc and the CI chaos smoke instead.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "core/mining_options.h"
#include "core/mining_result.h"
#include "dist/merger.h"
#include "dist/shard_plan.h"
#include "dist/shard_result.h"
#include "dist/worker.h"
#include "obs/json_writer.h"
#include "tsdb/time_series.h"
#include "util/stopwatch.h"

namespace ppm::bench {
namespace {

/// Canonical pattern/count/confidence serialization (the shape the
/// differential tests compare) so `patterns_match` certifies full
/// equality, not just equal sizes. Name-based, so it is comparable
/// across the merger's rebuilt symbol table and the source series'.
std::string Canonical(const MiningResult& result,
                      const tsdb::SymbolTable& symbols) {
  std::string out;
  for (const FrequentPattern& entry : result.patterns()) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "\t%llu\t%.17g\n",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out += entry.pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

void Run(obs::JsonWriter* rows) {
  const uint64_t length = Pick<uint64_t>(100000, 25000);
  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;
  options.num_threads = 1;

  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(Figure2Options(length, 6)));

  // One-shot reference: the exact pattern set every merge must reproduce.
  Stopwatch oneshot_watch;
  const MiningResult oneshot = DieOr(Mine(data.series, options));
  const double oneshot_ms = oneshot_watch.ElapsedMillis();
  const std::string oneshot_canonical =
      Canonical(oneshot, data.series.symbols());

  std::printf("%8s %8s %10s %10s %12s %12s %10s %12s\n", "shards", "extra",
              "hits_raw", "patterns", "worker_max", "merge(ms)", "oneshot",
              "retry(ms)");
  // `extra_attempts` = shard attempts whose result is discarded before the
  // merge, i.e. workers killed after mining but before the durable write
  // (the worst kill point: all the work, none of the result).
  struct Sweep {
    uint32_t shards;
    uint32_t extra_attempts;
  };
  const std::vector<Sweep> sweeps = {{1, 0}, {2, 0}, {4, 0}, {8, 0}, {4, 1}};
  for (const Sweep& sweep : sweeps) {
    dist::ShardPlan plan = DieOr(dist::PlanShards(
        {{"bench-synthetic", data.series.length()}}, options, sweep.shards));
    plan.fingerprint = 0xbe9cd157;  // In-process: no plan file on disk.

    std::vector<dist::ShardResult> results;
    results.reserve(plan.shards.size());
    double worker_ms_total = 0;
    double worker_ms_max = 0;
    for (const dist::ShardSpec& shard : plan.shards) {
      Stopwatch worker_watch;
      results.push_back(
          DieOr(dist::MineShardCounts(data.series, plan, shard.shard_id)));
      const double worker_ms = worker_watch.ElapsedMillis();
      worker_ms_total += worker_ms;
      if (worker_ms > worker_ms_max) worker_ms_max = worker_ms;
    }

    // Retry overhead: re-mine shard 0 and throw the result away, exactly
    // what the coordinator pays when an attempt dies pre-write.
    double retry_wasted_ms = 0;
    for (uint32_t attempt = 0; attempt < sweep.extra_attempts; ++attempt) {
      Stopwatch retry_watch;
      dist::ShardResult discarded =
          DieOr(dist::MineShardCounts(data.series, plan, 0));
      retry_wasted_ms += retry_watch.ElapsedMillis();
      (void)discarded;
    }

    Stopwatch merge_watch;
    const dist::MergeOutcome outcome = DieOr(
        dist::MergeShardResults(plan, results, /*allow_partial=*/false));
    const double merge_ms = merge_watch.ElapsedMillis();

    uint64_t letters_raw = 0;
    uint64_t hits_raw = 0;
    for (const dist::ShardResult& result : results) {
      letters_raw += result.letter_counts.size();
      hits_raw += result.hits.size();
    }
    const dist::MergedInput& merged = outcome.inputs.front();
    const bool match =
        Canonical(merged.result, merged.symbols) == oneshot_canonical;
    if (!match) {
      std::fprintf(stderr, "dist/one-shot disagreement at %u shards\n",
                   sweep.shards);
    }

    std::printf("%8u %8u %10llu %10zu %12.1f %12.2f %10.1f %12.1f\n",
                sweep.shards, sweep.extra_attempts,
                static_cast<unsigned long long>(hits_raw),
                merged.result.size(), worker_ms_max, merge_ms, oneshot_ms,
                retry_wasted_ms);
    rows->BeginObject()
        .Key("shards").Uint(sweep.shards)
        .Key("extra_attempts").Uint(sweep.extra_attempts)
        .Key("segments_total").Uint(plan.inputs.front().num_segments)
        .Key("letters_raw").Uint(letters_raw)
        .Key("hits_raw").Uint(hits_raw)
        .Key("patterns").Uint(merged.result.size())
        .Key("patterns_match").Uint(match ? 1 : 0)
        .Key("worker_ms_max").Double(worker_ms_max)
        .Key("worker_ms_total").Double(worker_ms_total)
        .Key("merge_ms").Double(merge_ms)
        .Key("retry_wasted_ms").Double(retry_wasted_ms)
        .Key("oneshot_ms").Double(oneshot_ms);
    rows->EndObject();
  }
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Distributed shard mining: per-shard scan + exact merge vs one shot");
  ppm::bench::BenchReport report("dist", argc, argv);
  ppm::bench::Run(&report.rows());
  std::printf(
      "\nThe critical path (slowest shard + merge) shrinks as shards grow\n"
      "while the merge stays cheap; a pre-write kill costs exactly one\n"
      "shard re-mine. Identical patterns every row.\n");
  report.Write();
  return 0;
}
