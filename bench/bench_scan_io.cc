// Disk-resident mining (Section 5.2, first bullet): when the series lives on
// disk, each extra scan costs real I/O. This bench mines the same series
// through a FileSeriesSource and reports scans, logical db passes, bytes
// read, and wall time for Apriori vs hit-set, plus the in-memory runs for
// contrast. Rows go to BENCH_scan_io.json (or argv[1]).
//
// The scan counts here are the heart of the perf regression gate: an
// accidental extra pass over the data shows up as an exact-field diff. The
// test-only hook PPM_BENCH_INJECT_EXTRA_SCAN=1 simulates exactly that bug
// (one gratuitous extra traversal of the file before mining) so CI can
// verify the gate actually fails when scan discipline regresses.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/scan_accounting.h"
#include "obs/json_writer.h"
#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

bool InjectExtraScan() {
  const char* env = std::getenv("PPM_BENCH_INJECT_EXTRA_SCAN");
  return env != nullptr && env[0] == '1';
}

/// The simulated regression: a full drain of the source that contributes
/// nothing, counted like any real pass would be.
void DrainOnce(tsdb::SeriesSource& source) {
  DieIf(source.StartScan());
  tsdb::FeatureSet instant;
  uint64_t instants = 0;
  while (source.Next(&instant)) ++instants;
  DieIf(source.status());
  RecordDbPass("injected_extra_scan", instants, 0);
}

struct Row {
  const char* miner;
  const char* storage;
  double ms;
  uint64_t scans;
  uint64_t bytes_read;
  uint64_t candidates;
  uint64_t patterns;
};

void EmitRow(obs::JsonWriter* rows, uint32_t mpl, const Row& row) {
  std::printf("%15u %-8s %-6s %12.1f %8llu %12llu %10llu %8llu\n", mpl,
              row.miner, row.storage, row.ms,
              static_cast<unsigned long long>(row.scans),
              static_cast<unsigned long long>(row.bytes_read),
              static_cast<unsigned long long>(row.candidates),
              static_cast<unsigned long long>(row.patterns));
  rows->BeginObject()
      .Key("mpl").Uint(mpl)
      .Key("miner").String(row.miner)
      .Key("storage").String(row.storage)
      .Key("time_ms").Double(row.ms)
      .Key("scans").Uint(row.scans)
      .Key("bytes_read").Uint(row.bytes_read)
      .Key("candidates").Uint(row.candidates)
      .Key("patterns").Uint(row.patterns);
  rows->EndObject();
}

Row MakeRow(const char* miner, const char* storage, const MiningResult& result,
            uint64_t bytes_read) {
  return Row{miner,
             storage,
             result.stats().elapsed_seconds * 1e3,
             result.stats().scans,
             bytes_read,
             result.stats().candidates_evaluated,
             result.size()};
}

void Run(uint32_t max_pat_length, obs::JsonWriter* rows) {
  const uint64_t length = Pick<uint64_t>(100000, 5000);
  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(Figure2Options(length, max_pat_length)));
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir ? tmpdir : "/tmp") +
                           "/ppm_bench_scan_io_" +
                           std::to_string(max_pat_length) + ".bin";
  DieIf(tsdb::WriteBinarySeries(data.series, path));

  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;

  {
    auto source = DieOr(tsdb::FileSeriesSource::Open(path));
    if (InjectExtraScan()) DrainOnce(*source);
    const uint64_t before = source->stats().bytes_read;
    const MiningResult result = DieOr(MineApriori(*source, options));
    EmitRow(rows, max_pat_length,
            MakeRow("apriori", "file", result,
                    source->stats().bytes_read - before));
  }
  {
    auto source = DieOr(tsdb::FileSeriesSource::Open(path));
    if (InjectExtraScan()) DrainOnce(*source);
    const uint64_t before = source->stats().bytes_read;
    const MiningResult result = DieOr(MineHitSet(*source, options));
    EmitRow(rows, max_pat_length,
            MakeRow("hitset", "file", result,
                    source->stats().bytes_read - before));
  }
  {
    tsdb::InMemorySeriesSource source(&data.series);
    if (InjectExtraScan()) DrainOnce(source);
    const MiningResult result = DieOr(MineApriori(source, options));
    EmitRow(rows, max_pat_length, MakeRow("apriori", "mem", result, 0));
  }
  {
    tsdb::InMemorySeriesSource source(&data.series);
    if (InjectExtraScan()) DrainOnce(source);
    const MiningResult result = DieOr(MineHitSet(source, options));
    EmitRow(rows, max_pat_length, MakeRow("hitset", "mem", result, 0));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Disk-resident series: scans, db passes, and bytes read (p=50)");
  std::printf("%15s %-8s %-6s %12s %8s %12s %10s %8s\n", "max-pat-length",
              "miner", "store", "time(ms)", "scans", "bytes", "candidates",
              "patterns");

  ppm::bench::BenchReport report("scan_io", argc, argv);
  report.AddMeta("min_conf", "0.8");
  report.AddMeta("injected_extra_scan",
                 ppm::bench::InjectExtraScan() ? "true" : "false");
  ppm::bench::Run(4, &report.rows());
  ppm::bench::Run(8, &report.rows());
  std::printf(
      "\nHit-set reads the file exactly twice regardless of pattern length;\n"
      "Apriori re-reads it once per level.\n");
  report.Write();
  return 0;
}
