// Disk-resident mining (Section 5.2, first bullet): when the series lives on
// disk, each extra scan costs real I/O. This bench mines the same series
// through a FileSeriesSource and reports scans, bytes read, and wall time
// for Apriori vs hit-set, plus the in-memory times for contrast.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Run(uint32_t max_pat_length) {
  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(Figure2Options(100000, max_pat_length)));
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir ? tmpdir : "/tmp") +
                           "/ppm_bench_scan_io_" +
                           std::to_string(max_pat_length) + ".bin";
  DieIf(tsdb::WriteBinarySeries(data.series, path));

  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;

  struct Row {
    const char* name;
    double ms;
    uint64_t scans;
    uint64_t mib;
  };
  Row rows[4];

  {
    auto source = DieOr(tsdb::FileSeriesSource::Open(path));
    const MiningResult result = DieOr(MineApriori(*source, options));
    rows[0] = {"apriori/file", result.stats().elapsed_seconds * 1e3,
               result.stats().scans, source->stats().bytes_read >> 20};
  }
  {
    auto source = DieOr(tsdb::FileSeriesSource::Open(path));
    const MiningResult result = DieOr(MineHitSet(*source, options));
    rows[1] = {"hit-set/file", result.stats().elapsed_seconds * 1e3,
               result.stats().scans, source->stats().bytes_read >> 20};
  }
  {
    tsdb::InMemorySeriesSource source(&data.series);
    const MiningResult result = DieOr(MineApriori(source, options));
    rows[2] = {"apriori/mem", result.stats().elapsed_seconds * 1e3,
               result.stats().scans, 0};
  }
  {
    tsdb::InMemorySeriesSource source(&data.series);
    const MiningResult result = DieOr(MineHitSet(source, options));
    rows[3] = {"hit-set/mem", result.stats().elapsed_seconds * 1e3,
               result.stats().scans, 0};
  }
  std::remove(path.c_str());

  for (const Row& row : rows) {
    std::printf("%15u %-14s %12.1f %8llu %10llu\n", max_pat_length, row.name,
                row.ms, static_cast<unsigned long long>(row.scans),
                static_cast<unsigned long long>(row.mib));
  }
}

}  // namespace
}  // namespace ppm::bench

int main() {
  ppm::bench::PrintHeader(
      "Disk-resident series: scans and bytes read (LENGTH=100k, p=50)");
  std::printf("%15s %-14s %12s %8s %10s\n", "max-pat-length", "miner",
              "time(ms)", "scans", "read(MiB)");
  ppm::bench::Run(4);
  ppm::bench::Run(8);
  std::printf(
      "\nHit-set reads the file exactly twice regardless of pattern length;\n"
      "Apriori re-reads it once per level.\n");
  return 0;
}
