// E9: the hit-set x MaxMiner hybrid sketched as future work in Section 5.
// Compares mining ONLY the maximal frequent patterns (MineMaximalHitSet,
// GenMax-style lookahead over the hit store) against deriving the complete
// frequent set with Algorithm 3.2 and filtering it down to the maximal
// ones. On correlated workloads the full frequent set is exponential in the
// longest pattern's length, so the direct search wins by orders of
// magnitude while producing the identical maximal set.

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "core/hitset_miner.h"
#include "core/maximal.h"
#include "obs/json_writer.h"
#include "core/maximal_miner.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace ppm::bench {
namespace {

/// `num_groups` blocks of `group_size` letters each; letters within a block
/// fire together (one Bernoulli draw per block per segment), so every
/// subset of a block is frequent and the maximal set has one pattern per
/// block.
tsdb::TimeSeries MakeCorrelatedSeries(uint32_t num_groups,
                                      uint32_t group_size,
                                      uint64_t num_segments, double conf,
                                      uint64_t seed) {
  Rng rng(seed);
  tsdb::TimeSeries series;
  const uint32_t period = num_groups * group_size;
  for (uint32_t f = 0; f < period; ++f) {
    series.symbols().Intern("f" + std::to_string(f));
  }
  for (uint64_t segment = 0; segment < num_segments; ++segment) {
    for (uint32_t group = 0; group < num_groups; ++group) {
      const bool on = rng.NextBool(conf);
      for (uint32_t i = 0; i < group_size; ++i) {
        tsdb::FeatureSet instant;
        if (on) instant.Set(group * group_size + i);
        series.Append(std::move(instant));
      }
    }
  }
  return series;
}

void Run(uint32_t num_groups, uint32_t group_size, obs::JsonWriter* rows) {
  const uint32_t period = num_groups * group_size;
  // Block confidence 0.85 with threshold 0.8: every subset of one block is
  // frequent (0.85), but cross-block combinations (0.85^2 = 0.72) are not,
  // so the full frequent set is num_groups * (2^group_size - 1) and the
  // maximal set is exactly one pattern per block.
  const tsdb::TimeSeries series =
      MakeCorrelatedSeries(num_groups, group_size, 400, 0.85, 17);
  MiningOptions options;
  options.period = period;
  options.min_confidence = 0.8;

  tsdb::InMemorySeriesSource direct_source(&series);
  auto direct = MineMaximalHitSet(direct_source, options);
  DieIf(direct.status());

  // The full enumeration explodes as group_size grows; guard it so the
  // bench stays runnable, and report "skipped" above the cutoff.
  double full_ms = -1;
  size_t full_size = 0;
  if (static_cast<uint64_t>(num_groups) << group_size <= (1u << 16)) {
    tsdb::InMemorySeriesSource full_source(&series);
    auto full = MineHitSet(full_source, options);
    DieIf(full.status());
    full_ms = full->stats().elapsed_seconds * 1e3;
    full_size = full->size();
    const auto filtered = MaximalPatterns(*full);
    if (filtered.size() != direct->size()) {
      std::fprintf(stderr, "maximal disagreement: %zu vs %zu\n",
                   filtered.size(), direct->size());
      std::exit(1);
    }
  }

  std::printf("%8u %6u %10zu %12llu %14.2f ", period, group_size,
              direct->size(),
              static_cast<unsigned long long>(
                  direct->stats().candidates_evaluated),
              direct->stats().elapsed_seconds * 1e3);
  if (full_ms >= 0) {
    std::printf("%12zu %14.2f\n", full_size, full_ms);
  } else {
    std::printf("%12s %14s\n", "2^k blowup", "(skipped)");
  }
  rows->BeginObject()
      .Key("period").Uint(period)
      .Key("group_size").Uint(group_size)
      .Key("maximal_patterns").Uint(direct->size())
      .Key("oracle_calls").Uint(direct->stats().candidates_evaluated)
      .Key("direct_ms").Double(direct->stats().elapsed_seconds * 1e3)
      .Key("all_frequent").Uint(full_size)
      .Key("derive_all_ms").Double(full_ms);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Maximal-only mining (hit-set x MaxMiner hybrid) vs derive-all+filter");
  std::printf("%8s %6s %10s %12s %14s %12s %14s\n", "period", "blk", "maximal",
              "oracle_calls", "direct(ms)", "all_freq", "derive_all(ms)");
  ppm::bench::BenchReport report("maximal", argc, argv);
  ppm::obs::JsonWriter& rows = report.rows();
  ppm::bench::Run(4, 2, &rows);
  ppm::bench::Run(4, 4, &rows);
  ppm::bench::Run(4, 8, &rows);
  if (!ppm::bench::CiProfile()) {
    ppm::bench::Run(4, 12, &rows);
    ppm::bench::Run(4, 16, &rows);
    ppm::bench::Run(8, 8, &rows);
  }
  std::printf(
      "\nDirect maximal search cost tracks the number of maximal patterns;\n"
      "derive-all cost tracks the full frequent set (2^block per block).\n");
  report.Write();
  return 0;
}
