// Sweeps each synthetic-workload parameter of Table 1 (LENGTH, p,
// MAX-PAT-LENGTH, |F_1|) while holding the others at the Figure 2 defaults,
// reporting runtime of both single-period algorithms. The paper states that
// runtime is governed by MAX-PAT-LENGTH and |F_1| for a fixed p, and scales
// with LENGTH; these sweeps verify each axis.
//
// Besides the terminal table, results are written as a RunReport to
// BENCH_table1.json (or argv[1]): one row object per sweep point under the
// "rows" section.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Report(const char* label, uint64_t value,
            const synth::GeneratorOptions& generator_options,
            obs::JsonWriter* rows) {
  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(generator_options));
  MiningOptions options;
  options.period = generator_options.period;
  options.min_confidence = 0.8;

  tsdb::InMemorySeriesSource apriori_source(&data.series);
  const MiningResult apriori = DieOr(MineApriori(apriori_source, options));
  tsdb::InMemorySeriesSource hitset_source(&data.series);
  const MiningResult hitset = DieOr(MineHitSet(hitset_source, options));

  std::printf("%-14s %10llu %14.1f %14.1f %8llu %8llu %10zu\n", label,
              static_cast<unsigned long long>(value),
              apriori.stats().elapsed_seconds * 1e3,
              hitset.stats().elapsed_seconds * 1e3,
              static_cast<unsigned long long>(apriori.stats().scans),
              static_cast<unsigned long long>(hitset.stats().scans),
              hitset.size());

  rows->BeginObject()
      .Key("param").String(label)
      .Key("value").Uint(value)
      .Key("length").Uint(generator_options.length)
      .Key("period").Uint(generator_options.period)
      .Key("apriori_ms").Double(apriori.stats().elapsed_seconds * 1e3)
      .Key("hitset_ms").Double(hitset.stats().elapsed_seconds * 1e3)
      .Key("scans_apriori").Uint(apriori.stats().scans)
      .Key("scans_hitset").Uint(hitset.stats().scans)
      .Key("patterns").Uint(hitset.size());
  rows->EndObject();
}

void PrintColumns() {
  std::printf("%-14s %10s %14s %14s %8s %8s %10s\n", "param", "value",
              "apriori(ms)", "hit-set(ms)", "scans_A", "scans_H", "patterns");
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  using ppm::bench::Figure2Options;
  using ppm::bench::PrintColumns;
  using ppm::bench::PrintHeader;
  using ppm::bench::Report;

  ppm::obs::JsonWriter rows;
  rows.BeginArray();

  PrintHeader("Table 1 sweep: LENGTH (p=50, MPL=6, |F1|=12)");
  PrintColumns();
  for (const uint64_t length : {50000ull, 100000ull, 200000ull, 400000ull}) {
    Report("LENGTH", length, Figure2Options(length, 6), &rows);
  }

  PrintHeader("Table 1 sweep: period p (LENGTH=100k, MPL=6, |F1| scales)");
  PrintColumns();
  for (const uint32_t period : {10u, 25u, 50u, 100u, 200u}) {
    ppm::synth::GeneratorOptions options = Figure2Options(100000, 6);
    options.period = period;
    options.num_f1 = period < 12 ? period : 12;
    if (options.max_pat_length > options.num_f1) {
      options.max_pat_length = options.num_f1;
    }
    Report("period", period, options, &rows);
  }

  PrintHeader("Table 1 sweep: MAX-PAT-LENGTH (LENGTH=100k, p=50, |F1|=12)");
  PrintColumns();
  for (const uint32_t mpl : {2u, 4u, 6u, 8u, 10u, 12u}) {
    Report("max-pat-len", mpl, Figure2Options(100000, mpl), &rows);
  }

  PrintHeader("Table 1 sweep: |F1| (LENGTH=100k, p=50, MPL=4)");
  PrintColumns();
  for (const uint32_t num_f1 : {4u, 8u, 16u, 24u, 32u}) {
    ppm::synth::GeneratorOptions options = Figure2Options(100000, 4);
    options.num_f1 = num_f1;
    Report("|F1|", num_f1, options, &rows);
  }
  rows.EndArray();

  ppm::obs::RunReport report("bench_table1");
  report.AddMeta("min_conf", "0.8");
  report.AddRawSection("rows", rows.str());
  ppm::bench::WriteBenchReport(
      &report, ppm::bench::BenchReportPath("table1", argc, argv));
  return 0;
}
