// Sweeps each synthetic-workload parameter of Table 1 (LENGTH, p,
// MAX-PAT-LENGTH, |F_1|) while holding the others at the Figure 2 defaults,
// reporting runtime of both single-period algorithms. The paper states that
// runtime is governed by MAX-PAT-LENGTH and |F_1| for a fixed p, and scales
// with LENGTH; these sweeps verify each axis.
//
// Besides the terminal table, results are written as a BenchReport to
// BENCH_table1.json (or argv[1]): one row object per sweep point under the
// "rows" section. PPM_BENCH_PROFILE=ci shrinks the sweeps for the CI gate.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Report(const char* label, uint64_t value,
            const synth::GeneratorOptions& generator_options,
            obs::JsonWriter* rows) {
  const synth::GeneratedSeries data =
      DieOr(synth::GenerateSeries(generator_options));
  MiningOptions options;
  options.period = generator_options.period;
  options.min_confidence = 0.8;

  tsdb::InMemorySeriesSource apriori_source(&data.series);
  const MiningResult apriori = DieOr(MineApriori(apriori_source, options));
  tsdb::InMemorySeriesSource hitset_source(&data.series);
  const MiningResult hitset = DieOr(MineHitSet(hitset_source, options));

  std::printf("%-14s %10llu %14.1f %14.1f %8llu %8llu %10zu\n", label,
              static_cast<unsigned long long>(value),
              apriori.stats().elapsed_seconds * 1e3,
              hitset.stats().elapsed_seconds * 1e3,
              static_cast<unsigned long long>(apriori.stats().scans),
              static_cast<unsigned long long>(hitset.stats().scans),
              hitset.size());

  rows->BeginObject()
      .Key("param").String(label)
      .Key("value").Uint(value)
      .Key("length").Uint(generator_options.length)
      .Key("period").Uint(generator_options.period)
      .Key("apriori_ms").Double(apriori.stats().elapsed_seconds * 1e3)
      .Key("hitset_ms").Double(hitset.stats().elapsed_seconds * 1e3)
      .Key("scans_apriori").Uint(apriori.stats().scans)
      .Key("scans_hitset").Uint(hitset.stats().scans)
      .Key("candidates_hitset").Uint(hitset.stats().candidates_evaluated)
      .Key("patterns").Uint(hitset.size());
  rows->EndObject();
}

void PrintColumns() {
  std::printf("%-14s %10s %14s %14s %8s %8s %10s\n", "param", "value",
              "apriori(ms)", "hit-set(ms)", "scans_A", "scans_H", "patterns");
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  using ppm::bench::Figure2Options;
  using ppm::bench::Pick;
  using ppm::bench::PrintColumns;
  using ppm::bench::PrintHeader;
  using ppm::bench::Report;

  ppm::bench::BenchReport report("table1", argc, argv);
  report.AddMeta("min_conf", "0.8");
  ppm::obs::JsonWriter& rows = report.rows();

  using U64List = std::vector<uint64_t>;
  using U32List = std::vector<uint32_t>;
  const uint64_t base_length = Pick<uint64_t>(100000, 5000);

  PrintHeader("Table 1 sweep: LENGTH (p=50, MPL=6, |F1|=12)");
  PrintColumns();
  for (const uint64_t length :
       Pick(U64List{50000, 100000, 200000, 400000}, U64List{2500, 5000})) {
    Report("LENGTH", length, Figure2Options(length, 6), &rows);
  }

  PrintHeader("Table 1 sweep: period p (LENGTH fixed, MPL=6, |F1| scales)");
  PrintColumns();
  for (const uint32_t period :
       Pick(U32List{10, 25, 50, 100, 200}, U32List{25, 50})) {
    ppm::synth::GeneratorOptions options = Figure2Options(base_length, 6);
    options.period = period;
    options.num_f1 = period < 12 ? period : 12;
    if (options.max_pat_length > options.num_f1) {
      options.max_pat_length = options.num_f1;
    }
    Report("period", period, options, &rows);
  }

  PrintHeader("Table 1 sweep: MAX-PAT-LENGTH (LENGTH fixed, p=50, |F1|=12)");
  PrintColumns();
  for (const uint32_t mpl :
       Pick(U32List{2, 4, 6, 8, 10, 12}, U32List{2, 4, 6})) {
    Report("max-pat-len", mpl, Figure2Options(base_length, mpl), &rows);
  }

  PrintHeader("Table 1 sweep: |F1| (LENGTH fixed, p=50, MPL=4)");
  PrintColumns();
  for (const uint32_t num_f1 :
       Pick(U32List{4, 8, 16, 24, 32}, U32List{4, 8, 16})) {
    ppm::synth::GeneratorOptions options = Figure2Options(base_length, 4);
    options.num_f1 = num_f1;
    Report("|F1|", num_f1, options, &rows);
  }

  report.Write();
  return 0;
}
