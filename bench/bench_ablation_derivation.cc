// Ablation 2 (DESIGN.md): isolates the *derivation* step of Algorithm 3.2
// (no series scans involved) and compares two counting strategies for the
// level-wise candidate evaluation of Algorithm 4.2:
//   A. per-candidate pruned traversal of the max-subpattern tree
//      (`CountSuperpatterns`, the paper's method);
//   B. hit-major flat counting: one pass over the distinct hits per level,
//      incrementing every candidate that is a subset of the hit.
// Both must find the identical frequent set; only the derivation time and
// the work model differ.

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "core/candidate_gen.h"
#include "obs/json_writer.h"
#include "core/f1_scan.h"
#include "core/hit_store.h"
#include "tsdb/series_source.h"
#include "util/stopwatch.h"

namespace ppm::bench {
namespace {

void Run(uint32_t max_pat_length, uint32_t num_f1, double independent_conf,
         double min_conf, obs::JsonWriter* rows) {
  synth::GeneratorOptions generator =
      Figure2Options(Pick<uint64_t>(100000, 5000), max_pat_length);
  generator.num_f1 = num_f1;
  generator.independent_confidence = independent_conf;
  const synth::GeneratedSeries data = DieOr(synth::GenerateSeries(generator));

  MiningOptions options;
  options.period = generator.period;
  options.min_confidence = min_conf;

  // Shared setup: F_1 and the hit multiset (both strategies start here).
  tsdb::InMemorySeriesSource source(&data.series);
  const F1ScanResult f1 = DieOr(ScanForF1(source, options));
  TreeHitStore tree(f1.space.full_mask(), f1.space.size());
  std::unordered_map<Bitset, uint64_t, BitsetHash> hit_map;
  {
    Bitset mask(f1.space.size());
    for (uint64_t segment = 0; segment < f1.num_periods; ++segment) {
      f1.space.SegmentMask(
          &data.series.instants()[segment * options.period], &mask);
      if (mask.Count() >= 2) {
        tree.AddHit(mask);
        ++hit_map[mask];
      }
    }
  }
  const std::vector<std::pair<Bitset, uint64_t>> hits(hit_map.begin(),
                                                      hit_map.end());

  // Strategy A: level-wise, per-candidate tree traversal.
  uint64_t total_a = 0, candidates_a = 0;
  Stopwatch watch_a;
  {
    std::vector<LevelEntry> frequent = MakeLevelOne(f1.letter_counts);
    total_a += frequent.size();
    while (!frequent.empty()) {
      std::vector<LevelEntry> candidates = GenerateCandidates(frequent);
      if (candidates.empty()) break;
      candidates_a += candidates.size();
      std::vector<LevelEntry> next;
      for (LevelEntry& candidate : candidates) {
        candidate.count = tree.CountSuperpatterns(candidate.mask);
        if (candidate.count >= f1.min_count) next.push_back(std::move(candidate));
      }
      total_a += next.size();
      frequent = std::move(next);
    }
  }
  const double ms_a = watch_a.ElapsedMillis();

  // Strategy B: level-wise, hit-major flat counting.
  uint64_t total_b = 0, candidates_b = 0;
  Stopwatch watch_b;
  {
    std::vector<LevelEntry> frequent = MakeLevelOne(f1.letter_counts);
    total_b += frequent.size();
    while (!frequent.empty()) {
      std::vector<LevelEntry> candidates = GenerateCandidates(frequent);
      if (candidates.empty()) break;
      candidates_b += candidates.size();
      for (const auto& [mask, count] : hits) {
        for (LevelEntry& candidate : candidates) {
          if (candidate.mask.IsSubsetOf(mask)) candidate.count += count;
        }
      }
      std::vector<LevelEntry> next;
      for (LevelEntry& candidate : candidates) {
        if (candidate.count >= f1.min_count) next.push_back(std::move(candidate));
      }
      total_b += next.size();
      frequent = std::move(next);
    }
  }
  const double ms_b = watch_b.ElapsedMillis();

  if (total_a != total_b || candidates_a != candidates_b) {
    std::fprintf(stderr, "strategy disagreement: %llu/%llu vs %llu/%llu\n",
                 static_cast<unsigned long long>(total_a),
                 static_cast<unsigned long long>(candidates_a),
                 static_cast<unsigned long long>(total_b),
                 static_cast<unsigned long long>(candidates_b));
    std::exit(1);
  }
  std::printf("%8u %6u %10zu %12llu %12llu %14.2f %14.2f\n", max_pat_length,
              num_f1, hits.size(),
              static_cast<unsigned long long>(candidates_a),
              static_cast<unsigned long long>(total_a), ms_a, ms_b);
  rows->BeginObject()
      .Key("mpl").Uint(max_pat_length)
      .Key("num_f1").Uint(num_f1)
      .Key("distinct_hits").Uint(hits.size())
      .Key("candidates").Uint(candidates_a)
      .Key("frequent").Uint(total_a)
      .Key("tree_ms").Double(ms_a)
      .Key("flat_ms").Double(ms_b);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Ablation: derivation counting -- tree traversal (A) vs hit-major flat "
      "(B)");
  std::printf("%8s %6s %10s %12s %12s %14s %14s\n", "MPL", "|F1|", "|H|",
              "candidates", "frequent", "tree(ms)", "flat(ms)");
  ppm::bench::BenchReport report("ablation_derivation", argc, argv);
  ppm::obs::JsonWriter& rows = report.rows();
  ppm::bench::Run(4, 12, 0.85, 0.8, &rows);
  ppm::bench::Run(6, 12, 0.85, 0.8, &rows);
  if (!ppm::bench::CiProfile()) {
    ppm::bench::Run(8, 12, 0.85, 0.8, &rows);
    ppm::bench::Run(10, 12, 0.85, 0.8, &rows);
    ppm::bench::Run(4, 24, 0.6, 0.5, &rows);
    ppm::bench::Run(4, 40, 0.6, 0.5, &rows);
  }
  report.Write();
  return 0;
}
