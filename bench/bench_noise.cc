// Robustness (the abstract claims "the proposed methods are also robust"):
// sweep the background noise rate of the Table 1 generator and report
// whether the planted structure still comes out clean -- spurious letters
// admitted into F_1, recovery of the planted maximal pattern, and runtime
// of both miners as the series gets denser.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/apriori_miner.h"
#include "core/hitset_miner.h"
#include "core/maximal.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

void Run(double noise_mean, obs::JsonWriter* rows) {
  synth::GeneratorOptions generator =
      Figure2Options(Pick<uint64_t>(100000, 5000), 6);
  generator.noise_mean = noise_mean;
  const synth::GeneratedSeries data = DieOr(synth::GenerateSeries(generator));

  MiningOptions options;
  options.period = generator.period;
  options.min_confidence = 0.8;

  tsdb::InMemorySeriesSource hit_source(&data.series);
  const MiningResult hitset = DieOr(MineHitSet(hit_source, options));
  tsdb::InMemorySeriesSource apriori_source(&data.series);
  const MiningResult apriori = DieOr(MineApriori(apriori_source, options));
  if (hitset.size() != apriori.size()) {
    std::fprintf(stderr, "miner disagreement under noise\n");
    std::exit(1);
  }

  // Spurious F_1 letters = mined letters beyond the planted ones.
  const uint64_t spurious =
      hitset.stats().num_f1_letters >= generator.num_f1
          ? hitset.stats().num_f1_letters - generator.num_f1
          : 0;
  // Planted letters and anchor recovered?
  uint32_t letters_found = 0;
  for (const Pattern& letter : data.planted_letters) {
    if (hitset.Find(letter) != nullptr) ++letters_found;
  }
  const bool anchor_found = hitset.Find(data.anchor) != nullptr;

  std::printf("%10.1f %8llu %10llu %12u/%-2u %8s %12.1f %12.1f\n", noise_mean,
              static_cast<unsigned long long>(hitset.stats().num_f1_letters),
              static_cast<unsigned long long>(spurious), letters_found,
              generator.num_f1, anchor_found ? "yes" : "NO",
              hitset.stats().elapsed_seconds * 1e3,
              apriori.stats().elapsed_seconds * 1e3);
  rows->BeginObject()
      .Key("noise_mean").Double(noise_mean)
      .Key("num_f1_letters").Uint(hitset.stats().num_f1_letters)
      .Key("spurious_letters").Uint(spurious)
      .Key("letters_found").Uint(letters_found)
      .Key("anchor_found").Uint(anchor_found ? 1 : 0)
      .Key("hitset_ms").Double(hitset.stats().elapsed_seconds * 1e3)
      .Key("apriori_ms").Double(apriori.stats().elapsed_seconds * 1e3);
  rows->EndObject();
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Robustness to background noise (p=50, MPL=6, |F1|=12, conf 0.8)");
  std::printf("%10s %8s %10s %15s %8s %12s %12s\n", "noise/slot", "|F1|",
              "spurious", "letters_found", "anchor", "hit-set(ms)",
              "apriori(ms)");
  ppm::bench::BenchReport report("noise", argc, argv);
  for (const double noise :
       ppm::bench::Pick(std::vector<double>{0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0},
                        std::vector<double>{0.0, 1.0, 4.0})) {
    ppm::bench::Run(noise, &report.rows());
  }
  std::printf(
      "\nNoise features draw from an 88-symbol alphabet, so even 16 noise\n"
      "events per instant leave each (offset, feature) letter far below the\n"
      "0.8 threshold: F_1 stays exactly the planted letters and the planted\n"
      "maximal pattern is recovered; runtime grows only with input density.\n");
  report.Write();
  return 0;
}
