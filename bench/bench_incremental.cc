// Incremental continuous-mining bench: resuming a live stream and querying
// it vs batch re-mining from scratch, as the already-mined history grows.
//
// Per history length H (in period-50 segments) the setup builds a
// checkpoint directory whose checkpoint covers exactly H segments while the
// WAL holds H + DELTA segments -- the state a `ppm stream --resume` finds
// after a crash or restart. The measured incremental path is
// `RecoverContinuousStream` (checkpoint load + WAL tail replay) followed by
// one `Snapshot`: exactly 1 database pass (`wal_replay`) scanning
// DELTA * period instants, **constant in H**. The batch path mines the full
// H + DELTA series from scratch: 2 passes whose scanned instants grow
// linearly with H. Both produce the same patterns (checked every row over
// the seeded letter space), so the rows are a like-for-like cost account.
//
// The db-pass and instant counts are exact, seed-determined integers; the
// perf gate compares them zero-tolerance while the timings stay advisory.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/hitset_miner.h"
#include "core/letter_space.h"
#include "core/mining_result.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "stream/checkpoint.h"
#include "stream/continuous_miner.h"
#include "tsdb/series_source.h"
#include "tsdb/time_series.h"
#include "tsdb/wal.h"
#include "util/stopwatch.h"

namespace ppm::bench {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kDeltaSegments = 10;  // WAL tail beyond the checkpoint.

uint64_t CounterDelta(const obs::MetricsSnapshot& delta, const char* name) {
  const uint64_t* value = delta.FindCounter(name);
  return value != nullptr ? *value : 0;
}

/// Canonical pattern/count/confidence serialization (the same shape the
/// differential tests compare) so `patterns_match` certifies full equality,
/// not just equal sizes.
std::string Canonical(const MiningResult& result,
                      const tsdb::SymbolTable& symbols) {
  std::string out;
  for (const FrequentPattern& entry : result.patterns()) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "\t%llu\t%.17g\n",
                  static_cast<unsigned long long>(entry.count),
                  entry.confidence);
    out += entry.pattern.Format(symbols);
    out += buffer;
  }
  return out;
}

void Run(obs::JsonWriter* rows) {
  const std::vector<uint64_t> histories =
      Pick(std::vector<uint64_t>{1000, 2000, 4000, 8000},
           std::vector<uint64_t>{100, 200, 400});
  MiningOptions options;
  options.period = 50;
  options.min_confidence = 0.8;
  options.num_threads = 1;

  const std::string base =
      (fs::temp_directory_path() / "ppm_bench_incremental").string();
  fs::remove_all(base);

  std::printf("%10s %12s %14s %14s %12s %12s %10s\n", "hist_seg",
              "incr_passes", "incr_instants", "batch_instants", "recover(ms)",
              "batch(ms)", "patterns");
  for (const uint64_t history : histories) {
    const uint64_t total_instants =
        (history + kDeltaSegments) * options.period;
    const synth::GeneratedSeries data =
        DieOr(synth::GenerateSeries(Figure2Options(total_instants, 6)));
    const uint64_t checkpoint_instants = history * options.period;

    // Setup: seed a miner over the first H segments, write the WAL up to
    // the same point, checkpoint (the barrier syncs the WAL first), then
    // append the DELTA-segment tail the resume path will have to replay.
    const std::string dir = base + "/h" + std::to_string(history);
    fs::create_directories(dir);
    tsdb::TimeSeries prefix;
    prefix.symbols() = data.series.symbols();
    for (uint64_t t = 0; t < checkpoint_instants; ++t) {
      prefix.Append(data.series.at(t));
    }
    auto miner =
        DieOr(stream::ContinuousMiner::SeedFromPrefix(options, prefix));
    auto wal = DieOr(tsdb::WalWriter::Create(stream::WalPath(dir),
                                             tsdb::WalFsync::kNever));
    for (uint64_t t = 0; t < checkpoint_instants; ++t) {
      DieIf(wal->Append(data.series.at(t)));
    }
    DieIf(stream::CheckpointStream(*miner, *wal, data.series.symbols(), dir));
    for (uint64_t t = checkpoint_instants; t < total_instants; ++t) {
      DieIf(wal->Append(data.series.at(t)));
    }
    DieIf(wal->Sync());
    wal.reset();

    // Incremental path: recover (checkpoint + O(DELTA) WAL tail) and query.
    const obs::MetricsSnapshot before_incr =
        obs::MetricsRegistry::Global().Snapshot();
    Stopwatch recover_watch;
    auto recovered = DieOr(stream::RecoverContinuousStream(dir, options));
    const double recover_ms = recover_watch.ElapsedMillis();
    Stopwatch snapshot_watch;
    const MiningResult incremental = recovered.miner->Snapshot();
    const double snapshot_ms = snapshot_watch.ElapsedMillis();
    const obs::MetricsSnapshot incr_delta =
        obs::MetricsRegistry::Global().Snapshot().DeltaSince(before_incr);

    // Batch path: mine all H + DELTA segments from scratch over the same
    // letter space (the resumed miner tracks its seeded letters only, so
    // the batch side must look at the same alphabet to be comparable).
    const std::vector<Letter>& seeded = recovered.miner->space().letters();
    const std::set<Letter> space(seeded.begin(), seeded.end());
    MiningOptions batch_options = options;
    batch_options.letter_filter = [&space](uint32_t position,
                                           tsdb::FeatureId feature) {
      return space.count(Letter{position, feature}) > 0;
    };
    tsdb::InMemorySeriesSource source(&data.series);
    const obs::MetricsSnapshot before_batch =
        obs::MetricsRegistry::Global().Snapshot();
    Stopwatch batch_watch;
    const MiningResult batch = DieOr(MineHitSet(source, batch_options));
    const double batch_ms = batch_watch.ElapsedMillis();
    const obs::MetricsSnapshot batch_delta =
        obs::MetricsRegistry::Global().Snapshot().DeltaSince(before_batch);

    const uint64_t incr_passes =
        CounterDelta(incr_delta, "ppm.scan.db_passes");
    const uint64_t incr_instants =
        CounterDelta(incr_delta, "ppm.scan.instants_scanned");
    const uint64_t batch_passes =
        CounterDelta(batch_delta, "ppm.scan.db_passes");
    const uint64_t batch_instants =
        CounterDelta(batch_delta, "ppm.scan.instants_scanned");
    const bool match = Canonical(incremental, data.series.symbols()) ==
                       Canonical(batch, data.series.symbols());
    if (!match) {
      std::fprintf(stderr, "incremental/batch disagreement at history %llu\n",
                   static_cast<unsigned long long>(history));
    }

    std::printf("%10llu %12llu %14llu %14llu %12.2f %12.1f %10zu\n",
                static_cast<unsigned long long>(history),
                static_cast<unsigned long long>(incr_passes),
                static_cast<unsigned long long>(incr_instants),
                static_cast<unsigned long long>(batch_instants), recover_ms,
                batch_ms, incremental.size());
    rows->BeginObject()
        .Key("history_segments").Uint(history)
        .Key("wal_tail_segments").Uint(kDeltaSegments)
        .Key("incr_db_passes").Uint(incr_passes)
        .Key("incr_instants_scanned").Uint(incr_instants)
        .Key("batch_db_passes").Uint(batch_passes)
        .Key("batch_instants_scanned").Uint(batch_instants)
        .Key("patterns").Uint(incremental.size())
        .Key("patterns_match").Uint(match ? 1 : 0)
        .Key("recover_ms").Double(recover_ms)
        .Key("snapshot_ms").Double(snapshot_ms)
        .Key("batch_mine_ms").Double(batch_ms);
    rows->EndObject();
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader(
      "Incremental resume + query vs batch re-mine, growing history");
  ppm::bench::BenchReport report("incremental", argc, argv);
  ppm::bench::Run(&report.rows());
  std::printf(
      "\nThe incremental column stays flat -- one wal_replay pass over the\n"
      "fixed WAL tail regardless of history -- while batch scans everything\n"
      "twice. Identical patterns every row.\n");
  report.Write();
  return 0;
}
