// Parallel scaling of the sharded miners (docs/PARALLELISM.md): the
// Figure 2 workload mined at 1, 2, 4, and 8 workers for single-period
// hit-set mining and both multi-period methods. Reports best-of-N wall time
// and speedup relative to the sequential (1-thread) run, and verifies that
// every thread count produces the same pattern set size.
//
// Speedups are only meaningful up to the machine's core count, which is
// recorded in the report meta; on a single-core host every speedup is ~1x
// (the shards serialize on the one core) and the numbers mostly measure
// sharding overhead.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/hitset_miner.h"
#include "core/multi_period.h"
#include "obs/json_writer.h"
#include "tsdb/series_source.h"

namespace ppm::bench {
namespace {

inline int Reps() { return Pick(3, 2); }
inline std::vector<uint32_t> ThreadCounts() {
  return Pick(std::vector<uint32_t>{1, 2, 4, 8}, std::vector<uint32_t>{1, 4});
}

struct Timed {
  double best_seconds = 0.0;
  size_t patterns = 0;
};

template <typename Fn>
Timed BestOf(const Fn& run) {
  Timed timed;
  const int reps = Reps();
  for (int rep = 0; rep < reps; ++rep) {
    const Timed once = run();
    if (rep == 0 || once.best_seconds < timed.best_seconds) {
      timed.best_seconds = once.best_seconds;
    }
    timed.patterns = once.patterns;
  }
  return timed;
}

void ReportRow(const char* workload, uint32_t threads, const Timed& timed,
               double baseline_seconds, obs::JsonWriter* rows) {
  const double speedup =
      timed.best_seconds > 0 ? baseline_seconds / timed.best_seconds : 0.0;
  std::printf("%-18s %8u %14.1f %9.2fx %10zu\n", workload, threads,
              timed.best_seconds * 1e3, speedup, timed.patterns);
  rows->BeginObject()
      .Key("workload").String(workload)
      .Key("threads").Uint(threads)
      .Key("best_ms").Double(timed.best_seconds * 1e3)
      .Key("speedup").Double(speedup)
      .Key("patterns").Uint(timed.patterns);
  rows->EndObject();
}

void SweepHitSet(const tsdb::TimeSeries& series, obs::JsonWriter* rows) {
  PrintHeader("hit-set mine, p=50 (MPL=6, |F1|=12)");
  std::printf("%-18s %8s %14s %10s %10s\n", "workload", "threads", "best(ms)",
              "speedup", "patterns");
  double baseline = 0.0;
  size_t baseline_patterns = 0;
  for (const uint32_t threads : ThreadCounts()) {
    const Timed timed = BestOf([&series, threads] {
      MiningOptions options;
      options.period = 50;
      options.min_confidence = 0.8;
      options.num_threads = threads;
      tsdb::InMemorySeriesSource source(&series);
      const MiningResult result = DieOr(MineHitSet(source, options));
      return Timed{result.stats().elapsed_seconds, result.size()};
    });
    if (threads == 1) {
      baseline = timed.best_seconds;
      baseline_patterns = timed.patterns;
    } else if (timed.patterns != baseline_patterns) {
      std::fprintf(stderr, "thread-count disagreement: %zu vs %zu patterns\n",
                   timed.patterns, baseline_patterns);
      std::exit(1);
    }
    ReportRow("hitset", threads, timed, baseline, rows);
  }
}

void SweepMultiPeriod(const tsdb::TimeSeries& series, bool shared,
                      obs::JsonWriter* rows) {
  const char* workload = shared ? "scan-shared" : "scan-looped";
  PrintHeader(shared ? "multi-period shared, periods 45..55"
                     : "multi-period looped, periods 45..55");
  std::printf("%-18s %8s %14s %10s %10s\n", "workload", "threads", "best(ms)",
              "speedup", "patterns");
  double baseline = 0.0;
  size_t baseline_patterns = 0;
  for (const uint32_t threads : ThreadCounts()) {
    const Timed timed = BestOf([&series, shared, threads] {
      MiningOptions options;
      options.min_confidence = 0.8;
      options.num_threads = threads;
      tsdb::InMemorySeriesSource source(&series);
      const MultiPeriodResult result =
          DieOr(shared ? MineMultiPeriodShared(source, 45, 55, options)
                       : MineMultiPeriodLooped(source, 45, 55, options));
      size_t patterns = 0;
      for (const auto& [p, r] : result.per_period) patterns += r.size();
      return Timed{result.elapsed_seconds, patterns};
    });
    if (threads == 1) {
      baseline = timed.best_seconds;
      baseline_patterns = timed.patterns;
    } else if (timed.patterns != baseline_patterns) {
      std::fprintf(stderr, "thread-count disagreement: %zu vs %zu patterns\n",
                   timed.patterns, baseline_patterns);
      std::exit(1);
    }
    ReportRow(workload, threads, timed, baseline, rows);
  }
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  const unsigned cores = std::thread::hardware_concurrency();
  const uint64_t length = ppm::bench::Pick<uint64_t>(200000, 10000);
  const ppm::synth::GeneratedSeries data = ppm::bench::DieOr(
      ppm::synth::GenerateSeries(ppm::bench::Figure2Options(length, 6)));

  ppm::bench::BenchReport report("parallel", argc, argv);
  report.AddMeta("min_conf", "0.8");
  report.AddMeta("length", length);
  report.AddMeta("reps", static_cast<uint64_t>(ppm::bench::Reps()));
  report.AddMeta("hardware_concurrency", static_cast<uint64_t>(cores));
  ppm::obs::JsonWriter& rows = report.rows();
  ppm::bench::SweepHitSet(data.series, &rows);
  ppm::bench::SweepMultiPeriod(data.series, /*shared=*/false, &rows);
  ppm::bench::SweepMultiPeriod(data.series, /*shared=*/true, &rows);

  std::printf("\nhardware concurrency: %u core%s\n", cores,
              cores == 1 ? "" : "s");
  report.Write();
  return 0;
}
