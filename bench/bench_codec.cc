// Storage-substrate bench: binary format v1 (fixed-width ids) vs v2
// (delta+varint). Reports file size and full-scan wall time through the
// FileSeriesSource for the Figure 2 workload and a denser variant.

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "obs/json_writer.h"
#include "tsdb/series_codec.h"
#include "tsdb/series_source.h"
#include "util/stopwatch.h"

namespace ppm::bench {
namespace {

uint64_t FileSize(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  return static_cast<uint64_t>(file.tellg());
}

void Run(const char* label, const tsdb::TimeSeries& series,
         obs::JsonWriter* rows) {
  for (const auto version :
       {tsdb::BinaryFormatVersion::kV1, tsdb::BinaryFormatVersion::kV2}) {
    const std::string path =
        std::string("/tmp/ppm_bench_codec_v") +
        std::to_string(static_cast<int>(version)) + ".bin";
    Stopwatch write_watch;
    DieIf(tsdb::WriteBinarySeries(series, path, version));
    const double write_ms = write_watch.ElapsedMillis();

    auto source = DieOr(tsdb::FileSeriesSource::Open(path));
    Stopwatch scan_watch;
    DieIf(source->StartScan());
    tsdb::FeatureSet instant;
    while (source->Next(&instant)) {
    }
    DieIf(source->status());
    const double scan_ms = scan_watch.ElapsedMillis();

    std::printf("%-10s v%d %12llu KiB %12.1f %12.1f\n", label,
                static_cast<int>(version),
                static_cast<unsigned long long>(FileSize(path) >> 10),
                write_ms, scan_ms);
    rows->BeginObject()
        .Key("workload").String(label)
        .Key("version").Uint(static_cast<uint64_t>(version))
        .Key("file_size").Uint(FileSize(path))
        .Key("write_ms").Double(write_ms)
        .Key("scan_ms").Double(scan_ms);
    rows->EndObject();
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace ppm::bench

int main(int argc, char** argv) {
  ppm::bench::PrintHeader("Binary codec: v1 fixed-width vs v2 delta+varint");
  std::printf("%-10s %2s %16s %12s %12s\n", "workload", "v", "size",
              "write(ms)", "scan(ms)");
  ppm::bench::BenchReport report("codec", argc, argv);
  const uint64_t length = ppm::bench::Pick<uint64_t>(200000, 10000);

  const auto figure2 =
      ppm::bench::DieOr(ppm::synth::GenerateSeries(
          ppm::bench::Figure2Options(length, 6)));
  ppm::bench::Run("figure2", figure2.series, &report.rows());

  ppm::synth::GeneratorOptions dense = ppm::bench::Figure2Options(length, 6);
  dense.noise_mean = 5.0;
  const auto dense_series =
      ppm::bench::DieOr(ppm::synth::GenerateSeries(dense));
  ppm::bench::Run("dense", dense_series.series, &report.rows());
  report.Write();
  return 0;
}
