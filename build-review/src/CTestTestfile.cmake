# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("tsdb")
subdirs("core")
subdirs("synth")
subdirs("discretize")
subdirs("multilevel")
subdirs("perturb")
subdirs("rules")
subdirs("etl")
subdirs("analysis")
subdirs("evolve")
subdirs("stream")
subdirs("multidim")
subdirs("query")
subdirs("cli")
