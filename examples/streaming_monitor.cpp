// Live periodicity monitoring with the incremental miner: seed a
// StreamingMiner from the first day of a metrics feed, then keep appending
// and snapshotting. Mid-stream the system's behaviour changes (a new
// periodic job appears); the drift detector flags it, and after reseeding
// the new pattern is mined too.
//
//   ./examples/streaming_monitor

#include <cstdio>

#include "stream/streaming_miner.h"
#include "tsdb/time_series.h"
#include "util/random.h"

namespace {

constexpr uint32_t kHoursPerDay = 24;

/// One instant per hour. Heartbeat at 03:00 from the start; a new job at
/// 15:00 starts on `new_job_day`.
ppm::tsdb::FeatureSet HourInstant(ppm::tsdb::SymbolTable* symbols,
                                  ppm::Rng* rng, int day, uint32_t hour,
                                  int new_job_day) {
  ppm::tsdb::FeatureSet instant;
  if (hour == 3 && rng->NextBool(0.95)) {
    instant.Set(symbols->Intern("heartbeat"));
  }
  if (day >= new_job_day && hour == 15 && rng->NextBool(0.9)) {
    instant.Set(symbols->Intern("report_job"));
  }
  if (rng->NextBool(0.1)) instant.Set(symbols->Intern("misc"));
  return instant;
}

void PrintSnapshot(const ppm::stream::StreamingMiner& miner,
                   const ppm::tsdb::SymbolTable& symbols, int day) {
  const ppm::MiningResult snapshot = miner.Snapshot();
  std::printf("day %3d: %llu segments, %zu frequent patterns:",
              day, static_cast<unsigned long long>(miner.segments_committed()),
              snapshot.size());
  for (const ppm::FrequentPattern& entry : snapshot.patterns()) {
    if (entry.pattern.LetterCount() != 1) continue;
    for (uint32_t hour = 0; hour < kHoursPerDay; ++hour) {
      entry.pattern.at(hour).ForEach([&](uint32_t id) {
        std::printf(" [%02u:00 %s %.2f]", hour,
                    symbols.NameOrPlaceholder(id).c_str(), entry.confidence);
      });
    }
  }
  std::printf("\n");
  const auto drifted = miner.DriftedLetters();
  for (const ppm::Letter& letter : drifted) {
    std::printf("         DRIFT: unseeded letter %s at %02u:00 is now "
                "frequent -- reseed recommended\n",
                symbols.NameOrPlaceholder(letter.feature).c_str(),
                letter.position);
  }
}

}  // namespace

int main() {
  using namespace ppm;

  tsdb::SymbolTable symbols;
  Rng rng(404);
  const int kNewJobDay = 60;

  MiningOptions options;
  options.period = kHoursPerDay;
  options.min_confidence = 0.8;

  // Day 0 seeds the miner.
  tsdb::TimeSeries seed_day;
  for (uint32_t hour = 0; hour < kHoursPerDay; ++hour) {
    seed_day.Append(HourInstant(&symbols, &rng, 0, hour, kNewJobDay));
  }
  seed_day.symbols() = symbols;
  // Drift is judged over the last 30 days, so new periodic behaviour is
  // flagged promptly instead of having to outweigh all of history.
  auto miner = stream::StreamingMiner::SeedFromPrefix(options, seed_day,
                                                      /*drift_window=*/30);
  if (!miner.ok()) {
    std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
    return 1;
  }

  // Stream 120 days, snapshotting monthly.
  for (int day = 1; day <= 120; ++day) {
    for (uint32_t hour = 0; hour < kHoursPerDay; ++hour) {
      (*miner)->Append(HourInstant(&symbols, &rng, day, hour, kNewJobDay));
    }
    if (day % 30 == 0) PrintSnapshot(**miner, symbols, day);
  }

  // The drift report names the new 15:00 job. Reseed: in a real system we
  // would rescan recent history; here we restart the miner with the union
  // of old and drifted letters and replay the last 30 days.
  std::printf("\nReseeding with drifted letters included...\n");
  std::vector<Letter> letters = (*miner)->space().letters();
  for (const Letter& drifted : (*miner)->DriftedLetters()) {
    letters.push_back(drifted);
  }
  auto reseeded = stream::StreamingMiner::Create(options, letters,
                                                 /*drift_window=*/30);
  if (!reseeded.ok()) {
    std::fprintf(stderr, "%s\n", reseeded.status().ToString().c_str());
    return 1;
  }
  for (int day = 121; day <= 150; ++day) {
    for (uint32_t hour = 0; hour < kHoursPerDay; ++hour) {
      (*reseeded)->Append(HourInstant(&symbols, &rng, day, hour, kNewJobDay));
    }
  }
  PrintSnapshot(**reseeded, symbols, 150);
  return 0;
}
