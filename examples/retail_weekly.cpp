// Multi-dimensional, query-constrained mining on retail data: daily
// observations along three dimensions (promotion, sales level, weather) are
// combined into one feature series and mined at the weekly period. Shows
//  * cross-dimensional patterns ("promo Friday -> high sales Saturday"),
//  * constraint pushdown: ask only about the weekend offsets, top-k,
//  * periodic rules across the week.
//
//   ./examples/retail_weekly

#include <cstdio>
#include <vector>

#include "multidim/multidim.h"
#include "query/constraints.h"
#include "rules/rules.h"
#include "tsdb/series_source.h"
#include "util/random.h"

namespace {

const char* kDayNames[7] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};

void PrintPattern(const ppm::Pattern& pattern,
                  const ppm::tsdb::SymbolTable& symbols, double confidence) {
  std::printf("  conf=%.2f ", confidence);
  for (uint32_t day = 0; day < 7; ++day) {
    pattern.at(day).ForEach([&](uint32_t id) {
      std::printf(" [%s %s]", kDayNames[day],
                  symbols.NameOrPlaceholder(id).c_str());
    });
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ppm;

  // Two years of daily data.
  Rng rng(7);
  const int weeks = 104;
  std::vector<std::string> promo(weeks * 7), sales(weeks * 7),
      weather(weeks * 7);
  for (int week = 0; week < weeks; ++week) {
    // The chain runs a Friday promotion most weeks.
    const bool promo_week = rng.NextBool(0.9);
    for (int day = 0; day < 7; ++day) {
      const int t = week * 7 + day;
      promo[t] = promo_week && day == 4 ? "flyer" : "";
      // Sales: high on weekends, boosted Saturday after a Friday flyer.
      double high_probability = day >= 5 ? 0.5 : 0.2;
      if (day == 5 && promo_week) high_probability = 0.96;
      sales[t] = rng.NextBool(high_probability) ? "high" : "normal";
      weather[t] = rng.NextBool(0.3) ? "rain" : "dry";
    }
  }

  multidim::DimensionedSeriesBuilder builder;
  if (!builder.AddDimension("promo", promo).ok() ||
      !builder.AddDimension("sales", sales).ok() ||
      !builder.AddDimension("weather", weather).ok()) {
    std::fprintf(stderr, "builder failed\n");
    return 1;
  }
  auto series = builder.Build();
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  MiningOptions options;
  options.period = 7;
  options.min_confidence = 0.75;
  options.max_letters = 3;

  auto result = Mine(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("weekly patterns: %zu (m = %llu weeks)\n", result->size(),
              static_cast<unsigned long long>(result->stats().num_periods));

  std::printf("\n== Cross-dimensional patterns (>= 2 dimensions) ==\n");
  for (const FrequentPattern& entry :
       multidim::CrossDimensionalPatterns(*result, series->symbols())) {
    PrintPattern(entry.pattern, series->symbols(), entry.confidence);
  }

  // Query: "what happens on the weekend?" -- offsets 5..6 only, top 5.
  query::Constraints weekend;
  weekend.offset_low = 5;
  weekend.offset_high = 6;
  weekend.top_k = 5;
  tsdb::InMemorySeriesSource source(&*series);
  auto weekend_result = query::MineConstrained(source, options, weekend);
  if (!weekend_result.ok()) {
    std::fprintf(stderr, "%s\n", weekend_result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Weekend-only query (top 5 by confidence) ==\n");
  for (const FrequentPattern& entry : weekend_result->patterns()) {
    PrintPattern(entry.pattern, series->symbols(), entry.confidence);
  }

  // Rules: earlier week => later week.
  auto rules = rules::GenerateRules(*result, 0.85);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Weekly rules (rule conf >= 0.85) ==\n");
  int shown = 0;
  for (const auto& rule : *rules) {
    if (multidim::DimensionCount(rule.antecedent.UnionWith(rule.consequent),
                                 series->symbols()) < 2) {
      continue;  // Only the cross-dimension rules are interesting here.
    }
    if (++shown > 6) break;
    std::printf("  %s\n", rule.Format(series->symbols()).c_str());
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}
