// Finding patterns at *unexpected* periods (Section 3.2): "certain patterns
// may appear at some unexpected periods, such as every 11 years, or every
// 14 hours. It is interesting to provide facilities to mine periodicity for
// a range of periods."
//
// We plant a pattern at period 11 (hidden from the analyst), mine every
// period in [2, 16] with the shared two-scan method (Algorithm 3.4), and
// rank periods by the strength of what was found -- the plant at 11 stands
// out, as do its multiples.
//
//   ./examples/period_scan

#include <cstdio>

#include "core/multi_period.h"
#include "synth/generator.h"
#include "tsdb/series_source.h"

int main() {
  using namespace ppm;

  synth::GeneratorOptions generator;
  generator.length = 22000;
  generator.period = 11;  // The "unexpected" period.
  generator.max_pat_length = 3;
  generator.num_f1 = 5;
  generator.num_features = 40;
  generator.anchor_confidence = 0.9;
  generator.noise_mean = 0.8;
  generator.seed = 11;
  auto data = synth::GenerateSeries(generator);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  MiningOptions options;
  options.min_confidence = 0.8;

  tsdb::InMemorySeriesSource source(&data->series);
  auto scan = MineMultiPeriodShared(source, 2, 16, options);
  if (!scan.ok()) {
    std::fprintf(stderr, "%s\n", scan.status().ToString().c_str());
    return 1;
  }

  std::printf("Scanned periods 2..16 in %llu scans of the series "
              "(%.1f ms total).\n\n",
              static_cast<unsigned long long>(scan->total_scans),
              scan->elapsed_seconds * 1e3);
  std::printf("%7s %10s %14s %16s\n", "period", "patterns", "max L-length",
              "best long conf");
  for (const auto& [period, result] : scan->per_period) {
    uint32_t best_len = 0;
    double best_conf = 0;
    for (const auto& entry : result.patterns()) {
      const uint32_t len = entry.pattern.LetterCount();
      if (len > best_len ||
          (len == best_len && entry.confidence > best_conf)) {
        best_len = len;
        best_conf = entry.confidence;
      }
    }
    std::printf("%7u %10zu %14u %15.2f%s\n", period, result.size(), best_len,
                best_conf, period % 11 == 0 ? "   <-- planted" : "");
  }

  // Show the strongest pattern at the detected period.
  const MiningResult* at11 = scan->ForPeriod(11);
  if (at11 != nullptr && !at11->empty()) {
    const FrequentPattern& top = at11->patterns().back();
    std::printf("\nStrongest period-11 pattern: %s  (conf=%.2f)\n",
                top.pattern.Format(data->series.symbols()).c_str(),
                top.confidence);
  }
  return 0;
}
