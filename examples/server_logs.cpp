// End-to-end pipeline on raw timestamped events: a quarter of synthetic web
// server logs is bucketized into an hourly feature series (the Section 2
// "derivation of the feature series"), a period-suggestion pass narrows the
// candidate periods, the daily period is mined, and windowed re-mining
// shows how the site's behaviour *evolved* mid-quarter (Section 6).
//
//   ./examples/server_logs

#include <cstdio>

#include "analysis/period_suggest.h"
#include "core/miner.h"
#include "etl/bucketizer.h"
#include "etl/event_log.h"
#include "evolve/evolution.h"
#include "util/random.h"

namespace {

constexpr int64_t kHour = 3600;
constexpr int64_t kDay = 86400;
// Monday 2026-01-05 00:00 UTC.
constexpr int64_t kStart = 1767571200;

ppm::etl::EventLog SimulateQuarter(uint64_t seed) {
  ppm::Rng rng(seed);
  ppm::etl::EventLog log;
  const int days = 91;
  for (int day = 0; day < days; ++day) {
    const int64_t midnight = kStart + day * kDay;
    const bool weekday = ppm::etl::DayOfWeek(midnight) < 5;
    for (int hour = 0; hour < 24; ++hour) {
      const int64_t t = midnight + hour * kHour + 60;
      // Nightly batch job at 02:00 every day, all quarter.
      if (hour == 2 && rng.NextBool(0.97)) log.Add(t, "batch_job");
      // Weekday office-hours traffic spike 9..17.
      if (weekday && hour >= 9 && hour <= 17 && rng.NextBool(0.9)) {
        log.Add(t, "high_traffic");
      }
      // Regime change: after day 45 a new cache cron lands at 04:00.
      if (day > 45 && hour == 4 && rng.NextBool(0.95)) {
        log.Add(t, "cache_refresh");
      }
      // Background errors, no periodicity.
      if (rng.NextBool(0.08)) log.Add(t + 120, "error_5xx");
    }
  }
  return log;
}

}  // namespace

int main() {
  using namespace ppm;

  etl::EventLog log = SimulateQuarter(/*seed=*/31);
  log.SortByTime();
  std::printf("raw events: %zu\n", log.size());

  // Hourly feature series, aligned to the hour.
  etl::BucketizeOptions bucketing;
  bucketing.bucket_width = kHour;
  bucketing.origin = kStart;
  auto series = etl::Bucketize(log, bucketing);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  std::printf("hourly instants: %llu\n",
              static_cast<unsigned long long>(series->length()));

  // Which period should we mine? Rank every (period, feature) signal in
  // 2..200 hours, then collapse each feature's harmonics.
  auto suggestions = analysis::SuggestPeriodsPerFeature(*series, 2, 200);
  if (!suggestions.ok()) {
    std::fprintf(stderr, "%s\n", suggestions.status().ToString().c_str());
    return 1;
  }
  const auto fundamentals = analysis::FundamentalPeriods(*suggestions);
  std::printf("\ntop period suggestions (hours, harmonics collapsed):\n");
  for (size_t i = 0; i < 5 && i < fundamentals.size(); ++i) {
    const auto& s = fundamentals[i];
    std::printf("  period=%-4u concentration=%.2f best letter: %s at +%uh\n",
                s.period, s.concentration,
                series->symbols().NameOrPlaceholder(s.feature).c_str(),
                s.position);
  }

  // Mine the daily period.
  MiningOptions options;
  options.period = 24;
  options.min_confidence = 0.85;
  auto daily = Mine(*series, options);
  if (!daily.ok()) {
    std::fprintf(stderr, "%s\n", daily.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndaily patterns (conf >= 0.85):\n");
  for (const FrequentPattern& entry : daily->patterns()) {
    if (entry.pattern.LetterCount() != 1) continue;
    for (uint32_t hour = 0; hour < 24; ++hour) {
      entry.pattern.at(hour).ForEach([&](uint32_t id) {
        std::printf("  %02u:00 %-14s conf=%.2f\n", hour,
                    series->symbols().NameOrPlaceholder(id).c_str(),
                    entry.confidence);
      });
    }
  }

  // Did the periodic behaviour evolve? Mine ~month-long windows.
  auto windows = evolve::MineWindows(*series, 30 * 24, options);
  if (!windows.ok()) {
    std::fprintf(stderr, "%s\n", windows.status().ToString().c_str());
    return 1;
  }
  std::printf("\nevolution across %zu windows of 30 days:\n", windows->size());
  for (size_t w = 1; w < windows->size(); ++w) {
    const auto diff = evolve::DiffResults((*windows)[w - 1].result,
                                          (*windows)[w].result, 0.1);
    std::printf("  window %zu -> %zu: %zu appeared, %zu vanished, %zu shifted\n",
                w - 1, w, diff.appeared.size(), diff.vanished.size(),
                diff.shifted.size());
    for (const FrequentPattern& entry : diff.appeared) {
      if (entry.pattern.LetterCount() == 1) {
        std::printf("    appeared: %s\n",
                    entry.pattern.Format(series->symbols()).c_str());
      }
    }
  }

  const auto stability = evolve::StabilityReport(*windows);
  std::printf("\nmost stable patterns:\n");
  for (size_t i = 0; i < 3 && i < stability.size(); ++i) {
    std::printf("  present in %u/%zu windows, mean conf %.2f: %s\n",
                stability[i].windows_present, windows->size(),
                stability[i].mean_confidence,
                stability[i].pattern.Format(series->symbols()).c_str());
  }
  return 0;
}
