// Quickstart: build a small feature time series, mine its partial periodic
// patterns with the max-subpattern hit-set miner, and print the results.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/maximal.h"
#include "core/miner.h"
#include "tsdb/time_series.h"

int main() {
  using namespace ppm;

  // A week of mornings, repeated: the series has one instant per day part
  // (morning, afternoon, evening), i.e. a period of 3.
  tsdb::TimeSeries series;
  for (int day = 0; day < 30; ++day) {
    // Coffee every morning; newspaper most mornings.
    if (day % 5 == 3) {
      series.AppendNamed({"coffee"});
    } else {
      series.AppendNamed({"coffee", "newspaper"});
    }
    // Afternoons are irregular.
    series.AppendNamed({day % 2 == 0 ? "gym" : "errands"});
    // Tea every evening.
    series.AppendNamed({"tea"});
  }

  MiningOptions options;
  options.period = 3;          // Mine daily patterns.
  options.min_confidence = 0.75;  // Frequent = holds on >= 75% of days.

  auto result = Mine(series, options);  // Algorithm 3.2 by default.
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Mined %zu frequent patterns (period %u, m = %llu days, "
              "%llu scans):\n\n",
              result->size(), options.period,
              static_cast<unsigned long long>(result->stats().num_periods),
              static_cast<unsigned long long>(result->stats().scans));
  std::printf("%s\n", result->ToString(series.symbols()).c_str());

  std::printf("Maximal patterns (everything else is one of their "
              "subpatterns):\n");
  for (const FrequentPattern& entry : MaximalPatterns(*result)) {
    std::printf("  %s   conf=%.2f\n",
                entry.pattern.Format(series.symbols()).c_str(),
                entry.confidence);
  }
  return 0;
}
