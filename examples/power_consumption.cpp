// Mining numeric data (Section 6 of the paper): "For mining numerical data,
// such as stock or power consumption fluctuation, one can examine the
// distribution of numerical values in the time-series data and discretize
// them into single- or multiple-level categorical data."
//
// We simulate a year of hourly electric load with a daily shape (overnight
// trough, morning ramp, evening peak) plus noise, discretize it into load
// bands, and mine the daily period. A second pass uses two-level
// discretization and the drill-down miner to refine coarse bands into fine
// ones only where the coarse band is already periodic.
//
//   ./examples/power_consumption

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/miner.h"
#include "discretize/discretizer.h"
#include "multilevel/multilevel_miner.h"
#include "multilevel/taxonomy.h"
#include "util/random.h"

namespace {

std::vector<double> SimulateHourlyLoad(int days, uint64_t seed) {
  ppm::Rng rng(seed);
  std::vector<double> load;
  load.reserve(static_cast<size_t>(days) * 24);
  for (int day = 0; day < days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      // Daily shape: trough ~3am, peak ~7pm.
      const double phase = 2.0 * M_PI * (hour - 7) / 24.0;
      double mw = 600 + 250 * std::sin(phase);
      if (hour >= 18 && hour <= 21) mw += 150;  // Evening peak.
      mw += 60 * rng.NextGaussian();            // Weather / noise.
      load.push_back(mw);
    }
  }
  return load;
}

}  // namespace

int main() {
  const std::vector<double> load = SimulateHourlyLoad(365, /*seed=*/9);

  // --- Single-level mining over 4 Gaussian load bands. ---
  ppm::discretize::DiscretizeOptions disc;
  disc.method = ppm::discretize::BinningMethod::kGaussian;
  disc.num_bins = 4;
  disc.prefix = "load";
  auto series = ppm::discretize::Discretize(load, disc);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  ppm::MiningOptions options;
  options.period = 24;
  options.min_confidence = 0.7;
  options.max_letters = 1;  // Per-hour bands; conjunctions are reported below.

  auto result = ppm::Mine(*series, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("== Hourly load bands periodic at the daily period "
              "(conf >= 0.70) ==\n");
  for (const ppm::FrequentPattern& entry : result->patterns()) {
    for (uint32_t hour = 0; hour < 24; ++hour) {
      entry.pattern.at(hour).ForEach([&](uint32_t id) {
        std::printf("  %02u:00  %-6s conf=%.2f\n", hour,
                    series->symbols().NameOrPlaceholder(id).c_str(),
                    entry.confidence);
      });
    }
  }

  // --- Two-level drill-down: 2 coarse bands refined into 8 fine bands. ---
  auto multi = ppm::discretize::DiscretizeMultiLevel(
      load, /*coarse_bins=*/2, /*fine_bins=*/8,
      ppm::discretize::BinningMethod::kGaussian, "band");
  if (!multi.ok()) {
    std::fprintf(stderr, "%s\n", multi.status().ToString().c_str());
    return 1;
  }
  auto taxonomy = ppm::multilevel::TaxonomyFromPairs(multi->hierarchy);
  if (!taxonomy.ok()) {
    std::fprintf(stderr, "%s\n", taxonomy.status().ToString().c_str());
    return 1;
  }

  ppm::MiningOptions drill = options;
  drill.min_confidence = 0.75;
  auto levels =
      ppm::multilevel::MineDrillDown(multi->series, *taxonomy, drill);
  if (!levels.ok()) {
    std::fprintf(stderr, "%s\n", levels.status().ToString().c_str());
    return 1;
  }
  for (const ppm::multilevel::LevelResult& level : *levels) {
    size_t letters = 0;
    for (const auto& entry : level.result.patterns()) {
      if (entry.pattern.LetterCount() == 1) ++letters;
    }
    std::printf("\n== Drill-down depth %u: %zu periodic hour/band letters ==\n",
                level.depth, letters);
    int shown = 0;
    for (const auto& entry : level.result.patterns()) {
      if (entry.pattern.LetterCount() != 1 || shown >= 8) continue;
      for (uint32_t hour = 0; hour < 24 && shown < 8; ++hour) {
        entry.pattern.at(hour).ForEach([&](uint32_t id) {
          const std::string name =
              level.series.symbols().NameOrPlaceholder(id);
          // At depth 2 the coarse bands pass through unchanged; list only
          // the letters refined at this depth.
          if (level.depth > 1 && name.find("lo") == std::string::npos) return;
          std::printf("  %02u:00  %-8s conf=%.2f\n", hour, name.c_str(),
                      entry.confidence);
          ++shown;
        });
      }
    }
  }
  return 0;
}
