// The paper's motivating example (Section 1): "Jim reads the Vancouver Sun
// newspaper from 7:00 to 7:30 every weekday morning but his activities at
// other times do not have much regularity."
//
// We simulate a year of Jim's activity log at a granularity of 4 slots per
// day (morning / noon / evening / night), mine the weekly period (28 slots),
// and also show perturbation-tolerant mining: on some days Jim reads the
// paper at noon instead, which slot enlargement absorbs.
//
//   ./examples/newspaper_routine

#include <cstdio>

#include "core/maximal.h"
#include "core/miner.h"
#include "perturb/perturbation.h"
#include "rules/rules.h"
#include "tsdb/time_series.h"
#include "util/random.h"

namespace {

constexpr uint32_t kSlotsPerDay = 4;
constexpr uint32_t kWeek = 7 * kSlotsPerDay;

ppm::tsdb::TimeSeries SimulateYear(uint64_t seed) {
  ppm::Rng rng(seed);
  ppm::tsdb::TimeSeries series;
  const char* random_acts[] = {"tv", "walk", "phone", "shopping", "nothing"};
  for (int day = 0; day < 364; ++day) {
    const bool weekday = day % 7 < 5;
    // Most weekday mornings Jim makes coffee, and with coffee he almost
    // always reads the Vancouver Sun -- usually in the morning slot,
    // occasionally slipping to noon (the perturbation). Days are
    // independent of each other, so week-spanning conjunctions stay below
    // the mining threshold and the output stays readable.
    const bool coffee = weekday && rng.NextBool(0.88);
    int read_slot = -1;
    if (weekday && rng.NextBool(coffee ? 0.95 : 0.3)) {
      read_slot = rng.NextBool(0.12) ? 1 : 0;
    }
    for (uint32_t slot = 0; slot < kSlotsPerDay; ++slot) {
      ppm::tsdb::FeatureSet acts;
      if (coffee && slot == 0) {
        acts.Set(series.symbols().Intern("coffee"));
      }
      if (static_cast<int>(slot) == read_slot) {
        acts.Set(series.symbols().Intern("sun_paper"));
      }
      // Friday evenings: dinner out, fairly regular.
      if (day % 7 == 4 && slot == 2 && rng.NextBool(0.85)) {
        acts.Set(series.symbols().Intern("dinner_out"));
      }
      // Background noise everywhere.
      if (rng.NextBool(0.5)) {
        acts.Set(series.symbols().Intern(
            random_acts[rng.NextBelow(std::size(random_acts))]));
      }
      series.Append(std::move(acts));
    }
  }
  return series;
}

const char* SlotName(uint32_t offset) {
  static const char* kDays[] = {"Mon", "Tue", "Wed", "Thu",
                                "Fri", "Sat", "Sun"};
  static const char* kSlots[] = {"morning", "noon", "evening", "night"};
  static char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s %s", kDays[offset / kSlotsPerDay],
                kSlots[offset % kSlotsPerDay]);
  return buffer;
}

void PrintPatterns(const ppm::MiningResult& result,
                   const ppm::tsdb::SymbolTable& symbols) {
  for (const ppm::FrequentPattern& entry : ppm::MaximalPatterns(result)) {
    std::printf("  conf=%.2f  letters:", entry.confidence);
    for (uint32_t offset = 0; offset < entry.pattern.period(); ++offset) {
      entry.pattern.at(offset).ForEach([&](uint32_t id) {
        std::printf(" [%s: %s]", SlotName(offset),
                    symbols.NameOrPlaceholder(id).c_str());
      });
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const ppm::tsdb::TimeSeries series = SimulateYear(/*seed=*/20260704);

  ppm::MiningOptions options;
  options.period = kWeek;
  options.min_confidence = 0.8;

  auto strict = ppm::Mine(series, options);
  if (!strict.ok()) {
    std::fprintf(stderr, "%s\n", strict.status().ToString().c_str());
    return 1;
  }
  std::printf("== Weekly maximal patterns (strict slots, conf >= 0.80) ==\n");
  PrintPatterns(*strict, series.symbols());

  // Slot enlargement (Section 6): catch the mornings when the paper slipped
  // to noon.
  auto tolerant = ppm::perturb::MineWithPerturbation(series, options,
                                                     /*half_window=*/1);
  if (!tolerant.ok()) {
    std::fprintf(stderr, "%s\n", tolerant.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n== With slot enlargement (half-window 1): jittered reads count ==\n");
  PrintPatterns(*tolerant, series.symbols());

  // Periodic association rules: "if X happened earlier in the week, Y
  // follows later in the week". Splits need letters at distinct offsets, so
  // the slot-enlarged result (which has multi-slot patterns) is used.
  auto rules =
      ppm::rules::GenerateRules(*tolerant, /*min_rule_confidence=*/0.9);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Within-week rules (rule confidence >= 0.90) ==\n");
  int shown = 0;
  for (const auto& rule : *rules) {
    if (shown >= 8) break;
    std::printf("  %s\n", rule.Format(series.symbols()).c_str());
    ++shown;
  }
  if (shown == 0) std::printf("  (no rules above threshold)\n");
  return 0;
}
